package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// backends returns one fresh store per backend, keyed by scheme. Each mem
// bucket name is unique per test so the process-wide registry cannot leak
// state across tests.
func backends(t *testing.T) map[string]Storer {
	t.Helper()
	out := map[string]Storer{}
	for scheme, url := range map[string]string{
		"dir": "dir://" + filepath.Join(t.TempDir(), "root"),
		"mem": fmt.Sprintf("mem://bucket-%s-%d", t.Name(), time.Now().UnixNano()),
	} {
		st, err := Open(url)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out[scheme] = st
	}
	return out
}

func TestOpenRejectsBadURLs(t *testing.T) {
	for _, url := range []string{"", "ftp://x", "dir://", "mem://", "/plain/path"} {
		if _, err := Open(url); err == nil {
			t.Fatalf("Open(%q) succeeded", url)
		}
	}
}

func TestKeyObjectRoundTrip(t *testing.T) {
	for scheme, st := range backends(t) {
		t.Run(scheme, func(t *testing.T) {
			if _, err := st.Get("missing"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get(missing) = %v, want ErrNotExist", err)
			}
			if err := st.Put("a/b/c.bin", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get("a/b/c.bin")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("payload")) {
				t.Fatalf("Get = %q", got)
			}
			// Returned data is a copy, not an aliased buffer.
			got[0] = 'X'
			again, _ := st.Get("a/b/c.bin")
			if !bytes.Equal(again, []byte("payload")) {
				t.Fatal("mutating a Get result corrupted the store")
			}

			if err := st.Rename("a/b/c.bin", "moved/c.bin"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("a/b/c.bin"); !errors.Is(err, ErrNotExist) {
				t.Fatal("old key survived rename")
			}
			if _, err := st.Get("moved/c.bin"); err != nil {
				t.Fatal(err)
			}
			if err := st.Rename("absent", "x"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Rename(absent) = %v, want ErrNotExist", err)
			}

			if err := st.Put("moved/d.bin", []byte("two")); err != nil {
				t.Fatal(err)
			}
			keys, err := st.List("moved/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"moved/c.bin", "moved/d.bin"}
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("List = %v, want %v", keys, want)
			}

			if err := st.Delete("moved/c.bin"); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("moved/c.bin"); err != nil {
				t.Fatalf("double delete errored: %v", err)
			}
			if _, err := st.Get("moved/c.bin"); !errors.Is(err, ErrNotExist) {
				t.Fatal("deleted key still readable")
			}
		})
	}
}

func TestKeyValidation(t *testing.T) {
	for scheme, st := range backends(t) {
		t.Run(scheme, func(t *testing.T) {
			for _, key := range []string{
				"", "/abs", "a//b", "a/./b", "../escape", "a/../../b",
				"back\\slash", ".checkpoint-123/x", "tree.old/x",
			} {
				if err := st.Put(key, []byte("x")); err == nil {
					t.Fatalf("Put(%q) accepted", key)
				}
			}
		})
	}
}

func checkpointLikeTree(gen int) Tree {
	return Tree{
		"manifest.json":                  []byte(fmt.Sprintf(`{"version":3,"gen":%d}`, gen)),
		"virgin.bin":                     {0x01, 0x02, byte(gen)},
		"worker-000/queue/id-000001.nyx": []byte(fmt.Sprintf("input-%d", gen)),
		"worker-000/sched.json":          []byte("[]"),
	}
}

func TestTreeRoundTripAndReplace(t *testing.T) {
	for scheme, st := range backends(t) {
		t.Run(scheme, func(t *testing.T) {
			if _, err := st.GetTree("ckpt"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("GetTree(missing) = %v, want ErrNotExist", err)
			}
			t1 := checkpointLikeTree(1)
			if err := st.PutTree("ckpt", t1); err != nil {
				t.Fatal(err)
			}
			got, err := st.GetTree("ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, t1) {
				t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, t1)
			}

			// Replacement removes keys of the previous generation that the
			// new tree no longer carries.
			t2 := checkpointLikeTree(2)
			delete(t2, "worker-000/sched.json")
			if err := st.PutTree("ckpt", t2); err != nil {
				t.Fatal(err)
			}
			got, err = st.GetTree("ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, t2) {
				t.Fatalf("replace mismatch:\n got %v\nwant %v", got, t2)
			}

			// Tree contents are addressable as plain keys too.
			raw, err := st.Get("ckpt/manifest.json")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, t2["manifest.json"]) {
				t.Fatal("tree file not visible through the key space")
			}

			if err := st.DeleteTree("ckpt"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.GetTree("ckpt"); !errors.Is(err, ErrNotExist) {
				t.Fatal("deleted tree still readable")
			}
			if err := st.DeleteTree("ckpt"); err != nil {
				t.Fatalf("double tree delete errored: %v", err)
			}
		})
	}
}

// A PutTree that fails — for any reason, at any point — must leave the
// previous tree fully intact: the torn-write contract checkpoints rely on.
func TestTornPutTreeNeverClobbers(t *testing.T) {
	for scheme, st := range backends(t) {
		t.Run(scheme, func(t *testing.T) {
			good := checkpointLikeTree(1)
			if err := st.PutTree("ckpt", good); err != nil {
				t.Fatal(err)
			}
			// Syntactically invalid key: rejected before any write.
			if err := st.PutTree("ckpt", Tree{"../evil": []byte("x")}); err == nil {
				t.Fatal("bad tree accepted")
			}
			// A key that is also another key's directory cannot exist on a
			// filesystem; both backends reject it before mutating.
			conflict := Tree{"a": []byte("file"), "a/b": []byte("child")}
			if err := st.PutTree("ckpt", conflict); err == nil {
				t.Fatal("conflicting tree accepted")
			}
			if scheme == "dir" {
				// A filename past NAME_MAX fails only once staging is
				// underway (it sorts after valid keys, so files were
				// already written) — a genuinely torn write. The swap
				// must never have started.
				torn := checkpointLikeTree(9)
				torn["zz-"+strings.Repeat("x", 300)+".nyx"] = []byte("unwritable")
				if err := st.PutTree("ckpt", torn); err == nil {
					t.Fatal("over-long key accepted")
				}
			}
			if err := st.PutTree("ckpt", Tree{}); err == nil {
				t.Fatal("empty tree accepted")
			}
			got, err := st.GetTree("ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, good) {
				t.Fatalf("previous tree damaged by failed PutTree:\n got %v\nwant %v", got, good)
			}
		})
	}
}

func TestCopyTreeAcrossBackends(t *testing.T) {
	b := backends(t)
	src, dst := b["dir"], b["mem"]
	tree := checkpointLikeTree(7)
	if err := src.PutTree("campaigns/c01", tree); err != nil {
		t.Fatal(err)
	}
	if err := CopyTree(dst, src, "campaigns/c01"); err != nil {
		t.Fatal(err)
	}
	got, err := dst.GetTree("campaigns/c01")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tree) {
		t.Fatal("copied tree differs from source")
	}
	if err := CopyTree(dst, src, "campaigns/absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("CopyTree(absent) = %v, want ErrNotExist", err)
	}
}

// A crash between the dir backend's two renames leaves only the parked
// name+".old" copy. GetTree must recover it — the previous checkpoint is
// never lost — and the promoted tree must read back bit-for-bit.
func TestDirCrashBetweenRenamesRecovers(t *testing.T) {
	root := filepath.Join(t.TempDir(), "root")
	st, err := Open("dir://" + root)
	if err != nil {
		t.Fatal(err)
	}
	tree := checkpointLikeTree(3)
	if err := st.PutTree("ckpt", tree); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the old tree is parked, the staged new
	// tree never landed.
	if err := os.Rename(filepath.Join(root, "ckpt"), filepath.Join(root, "ckpt.old")); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetTree("ckpt")
	if err != nil {
		t.Fatalf("parked checkpoint not recovered: %v", err)
	}
	if !reflect.DeepEqual(got, tree) {
		t.Fatal("recovered tree differs from the parked copy")
	}
	if _, err := os.Stat(filepath.Join(root, "ckpt.old")); !os.IsNotExist(err) {
		t.Fatal("parked copy still present after recovery")
	}
	// The recovered tree is a first-class checkpoint again.
	if err := st.PutTree("ckpt", checkpointLikeTree(4)); err != nil {
		t.Fatal(err)
	}
}

// Opening a dir store sweeps stale staging directories (crash debris) but
// leaves fresh ones alone, since they may belong to a live writer.
func TestDirOpenSweepsStaleTemps(t *testing.T) {
	root := filepath.Join(t.TempDir(), "root")
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(root, ".checkpoint-stale123")
	fresh := filepath.Join(root, ".checkpoint-fresh456")
	for _, dir := range []string{stale, fresh} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	st, err := Open("dir://" + root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp dir survived the open sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp dir was swept")
	}
	// Bookkeeping dirs never leak into the key space.
	keys, err := st.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("List leaked bookkeeping entries: %v", keys)
	}
}

// Two mem stores opened on the same bucket URL share state — the property
// that makes mem:// behave like one remote destination per bucket.
func TestMemBucketsShared(t *testing.T) {
	url := fmt.Sprintf("mem://shared-%d", time.Now().UnixNano())
	a, err := Open(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("k")
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("second handle sees %q, %v", got, err)
	}
	other, err := Open(url + "-other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Get("k"); !errors.Is(err, ErrNotExist) {
		t.Fatal("distinct buckets share state")
	}
}
