package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// memRegistry shares buckets by name across Open calls, so "mem://jobs"
// addresses the same objects from anywhere in the process — the in-process
// stand-in for a remote object store (same URL-configured destination UX,
// no network). State lives for the lifetime of the process only.
var memRegistry = struct {
	sync.Mutex
	buckets map[string]*memBucket
}{buckets: map[string]*memBucket{}}

type memBucket struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// memStore is the remote-style backend: a handle on one named bucket.
type memStore struct {
	bucket *memBucket
	rawurl string
}

func openMem(name, rawurl string) (Storer, error) {
	if name == "" || strings.HasPrefix(name, "/") {
		return nil, fmt.Errorf("store: %s: empty bucket name", rawurl)
	}
	memRegistry.Lock()
	defer memRegistry.Unlock()
	b, ok := memRegistry.buckets[name]
	if !ok {
		b = &memBucket{objects: map[string][]byte{}}
		memRegistry.buckets[name] = b
	}
	return &memStore{bucket: b, rawurl: rawurl}, nil
}

func (m *memStore) URL() string { return m.rawurl }

func (m *memStore) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	m.bucket.mu.Lock()
	defer m.bucket.mu.Unlock()
	m.bucket.objects[key] = append([]byte(nil), data...)
	return nil
}

func (m *memStore) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	m.bucket.mu.RLock()
	defer m.bucket.mu.RUnlock()
	data, ok := m.bucket.objects[key]
	if !ok {
		return nil, fmt.Errorf("store: get %q: %w", key, ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

func (m *memStore) List(prefix string) ([]string, error) {
	m.bucket.mu.RLock()
	defer m.bucket.mu.RUnlock()
	var keys []string
	for k := range m.bucket.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (m *memStore) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	m.bucket.mu.Lock()
	defer m.bucket.mu.Unlock()
	delete(m.bucket.objects, key)
	return nil
}

func (m *memStore) Rename(oldKey, newKey string) error {
	if err := validKey(oldKey); err != nil {
		return err
	}
	if err := validKey(newKey); err != nil {
		return err
	}
	m.bucket.mu.Lock()
	defer m.bucket.mu.Unlock()
	data, ok := m.bucket.objects[oldKey]
	if !ok {
		return fmt.Errorf("store: rename %q: %w", oldKey, ErrNotExist)
	}
	delete(m.bucket.objects, oldKey)
	m.bucket.objects[newKey] = data
	return nil
}

// PutTree swaps the whole key range under the bucket lock: validation and
// the copy of t happen before any existing key is touched, so a failed
// call leaves the previous tree untouched and readers never observe a
// partial mix of generations.
func (m *memStore) PutTree(name string, t Tree) error {
	if err := validTree(name, t); err != nil {
		return err
	}
	prefix := treePrefix(name)
	fresh := make(map[string][]byte, len(t))
	for k, v := range t {
		fresh[prefix+k] = append([]byte(nil), v...)
	}
	m.bucket.mu.Lock()
	defer m.bucket.mu.Unlock()
	for k := range m.bucket.objects {
		if strings.HasPrefix(k, prefix) {
			delete(m.bucket.objects, k)
		}
	}
	for k, v := range fresh {
		m.bucket.objects[k] = v
	}
	return nil
}

func (m *memStore) GetTree(name string) (Tree, error) {
	if err := validKey(name); err != nil {
		return nil, err
	}
	prefix := treePrefix(name)
	m.bucket.mu.RLock()
	defer m.bucket.mu.RUnlock()
	t := Tree{}
	for k, v := range m.bucket.objects {
		if strings.HasPrefix(k, prefix) {
			t[strings.TrimPrefix(k, prefix)] = append([]byte(nil), v...)
		}
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("store: get tree %q: %w", name, ErrNotExist)
	}
	return t, nil
}

func (m *memStore) DeleteTree(name string) error {
	if err := validKey(name); err != nil {
		return err
	}
	prefix := treePrefix(name)
	m.bucket.mu.Lock()
	defer m.bucket.mu.Unlock()
	for k := range m.bucket.objects {
		if strings.HasPrefix(k, prefix) {
			delete(m.bucket.objects, k)
		}
	}
	return nil
}
