package store

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// tmpPrefix names the temporary sibling directories PutTree stages a
	// tree in before the swap (kept from campaign.Checkpoint so stale
	// debris from older versions is swept too).
	tmpPrefix = ".checkpoint-"
	// oldSuffix names the parked previous tree during the swap.
	oldSuffix = ".old"
	// staleAfter is how old a temp directory must be before the open-time
	// sweep reclaims it, so a concurrent writer's in-flight temp dir in a
	// shared root is never mistaken for debris.
	staleAfter = time.Hour
)

// dirStore keeps objects as files under a root directory. Tree replacement
// is near-atomic: the new tree is staged in a tmpPrefix sibling, the old
// tree is parked at name+".old", the staged tree is renamed in, and the
// parked copy is removed. A crash leaves either the old tree (possibly
// still parked, which GetTree recovers) or the new one — never a mix.
type dirStore struct {
	root   string
	rawurl string
	// swap serializes the rename dance so two concurrent PutTree calls
	// to the same name cannot interleave their park/rename steps.
	swap sync.Mutex
}

func openDir(root, rawurl string) (Storer, error) {
	if root == "" {
		return nil, fmt.Errorf("store: %s: empty directory path", rawurl)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %s: %w", rawurl, err)
	}
	d := &dirStore{root: root, rawurl: rawurl}
	d.sweepStaleTemps()
	return d, nil
}

// sweepStaleTemps removes abandoned staging directories: a crash between
// PutTree's staging and swap strands a tmpPrefix dir that nothing would
// ever reclaim. Only temps older than staleAfter go, so an in-flight
// checkpoint from a concurrent process survives the sweep.
func (d *dirStore) sweepStaleTemps() {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		info, err := e.Info()
		//nyx:wallclock host-side temp-dir hygiene: picks crashed-run leftovers to delete, never influences checkpoint bytes
		if err != nil || time.Since(info.ModTime()) < staleAfter {
			continue
		}
		os.RemoveAll(filepath.Join(d.root, e.Name())) //nolint:errcheck // best-effort cleanup
	}
}

func (d *dirStore) URL() string { return d.rawurl }

func (d *dirStore) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

func (d *dirStore) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	return nil
}

func (d *dirStore) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: get %q: %w", key, ErrNotExist)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get %q: %w", key, err)
	}
	return data, nil
}

func (d *dirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(d.root, func(p string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := de.Name()
		if de.IsDir() {
			// Skip the backends' own bookkeeping: staging dirs and
			// parked previous trees are not part of the key space.
			if p != d.root && (strings.HasPrefix(name, tmpPrefix) || strings.HasSuffix(name, oldSuffix)) {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list %q: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

func (d *dirStore) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := os.Remove(d.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}

func (d *dirStore) Rename(oldKey, newKey string) error {
	if err := validKey(oldKey); err != nil {
		return err
	}
	if err := validKey(newKey); err != nil {
		return err
	}
	np := d.path(newKey)
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return fmt.Errorf("store: rename %q: %w", oldKey, err)
	}
	err := os.Rename(d.path(oldKey), np)
	if os.IsNotExist(err) {
		return fmt.Errorf("store: rename %q: %w", oldKey, ErrNotExist)
	}
	if err != nil {
		return fmt.Errorf("store: rename %q: %w", oldKey, err)
	}
	return nil
}

func (d *dirStore) PutTree(name string, t Tree) error {
	if err := validTree(name, t); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(d.root, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: put tree %q: %w", name, err)
	}
	defer os.RemoveAll(tmp)
	for _, key := range sortedKeys(t) {
		p := filepath.Join(tmp, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return fmt.Errorf("store: put tree %q: %w", name, err)
		}
		if err := os.WriteFile(p, t[key], 0o644); err != nil {
			return fmt.Errorf("store: put tree %q: %w", name, err)
		}
	}

	d.swap.Lock()
	defer d.swap.Unlock()
	dest := d.path(name)
	if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		return fmt.Errorf("store: put tree %q: %w", name, err)
	}
	old := dest + oldSuffix
	if _, err := os.Stat(dest); err == nil {
		if err := os.RemoveAll(old); err != nil {
			return fmt.Errorf("store: put tree %q: %w", name, err)
		}
		if err := os.Rename(dest, old); err != nil {
			return fmt.Errorf("store: put tree %q: %w", name, err)
		}
	} else {
		// No current tree to park; drop any .old leftover so a resumed
		// writer does not fall back to a two-generations-stale copy.
		os.RemoveAll(old) //nolint:errcheck // best-effort cleanup
	}
	if err := os.Rename(tmp, dest); err != nil {
		return fmt.Errorf("store: put tree %q: %w", name, err)
	}
	os.RemoveAll(old) //nolint:errcheck // best-effort cleanup of the parked copy
	return nil
}

func (d *dirStore) GetTree(name string) (Tree, error) {
	if err := validKey(name); err != nil {
		return nil, err
	}
	d.swap.Lock()
	dest := d.path(name)
	if _, err := os.Stat(dest); os.IsNotExist(err) {
		// A crash between PutTree's two renames leaves only the parked
		// copy; complete the interrupted swap by promoting it back.
		old := dest + oldSuffix
		if _, operr := os.Stat(old); operr == nil {
			if rerr := os.Rename(old, dest); rerr != nil {
				d.swap.Unlock()
				return nil, fmt.Errorf("store: get tree %q: recovering parked copy: %w", name, rerr)
			}
		} else {
			d.swap.Unlock()
			return nil, fmt.Errorf("store: get tree %q: %w", name, ErrNotExist)
		}
	}
	d.swap.Unlock()

	t := Tree{}
	err := filepath.WalkDir(dest, func(p string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dest, p)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		t[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: get tree %q: %w", name, err)
	}
	return t, nil
}

func (d *dirStore) DeleteTree(name string) error {
	if err := validKey(name); err != nil {
		return err
	}
	d.swap.Lock()
	defer d.swap.Unlock()
	dest := d.path(name)
	if err := os.RemoveAll(dest); err != nil {
		return fmt.Errorf("store: delete tree %q: %w", name, err)
	}
	if err := os.RemoveAll(dest + oldSuffix); err != nil {
		return fmt.Errorf("store: delete tree %q: %w", name, err)
	}
	return nil
}

// treePrefix returns the key-space prefix of a tree name.
func treePrefix(name string) string { return path.Clean(name) + "/" }
