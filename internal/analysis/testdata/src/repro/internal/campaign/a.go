// Package campaign is the lockheld fixture: its import path is exactly
// repro/internal/campaign, one of the gated broker/service/pool packages.
package campaign

import (
	"sync"
	"time"
)

type Broker struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	wg  sync.WaitGroup
	ch  chan int
	out chan int
}

func (b *Broker) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while b\.mu is held`
	b.mu.Unlock()
}

func (b *Broker) recvUnderDeferredLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive while b\.mu is held`
}

func (b *Broker) sendAfterUnlock() {
	b.mu.Lock()
	n := 1
	b.mu.Unlock()
	b.ch <- n // lock released: fine
}

func (b *Broker) waitUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want `sync\.WaitGroup\.Wait while b\.mu is held`
}

func (b *Broker) sleepUnderRLock() {
	b.rw.RLock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while b\.rw is held`
	b.rw.RUnlock()
}

func (b *Broker) blockingSelectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `blocking select while b\.mu is held`
	case v := <-b.ch:
		_ = v
	case b.out <- 1:
	}
}

func (b *Broker) nonBlockingSelectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		_ = v
	default:
	}
}

func (b *Broker) lockInBranch(cond bool) {
	if cond {
		b.mu.Lock()
		b.ch <- 1 // want `channel send while b\.mu is held`
		b.mu.Unlock()
	}
}

func (b *Broker) goroutineEscapesRegion() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1 // runs after Unlock on its own goroutine: fine
	}()
}

func (b *Broker) reviewedBlockingSend() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 //nyx:blocking fixture-reviewed: buffered control channel, never full
}

func (b *Broker) noLockAtAll() {
	b.ch <- 1
	<-b.ch
	b.wg.Wait()
}

// emit blocks two calls deep: only the transitive may-block fact makes the
// send visible to a caller holding the lock.
func (b *Broker) emit() { b.relay() }

func (b *Broker) relay() { b.out <- 1 }

func (b *Broker) transitiveSendUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.emit() // want `call that may block: campaign\.\(\*Broker\)\.emit → campaign\.\(\*Broker\)\.relay \(channel send at .*\) while b\.mu is held`
}

func (b *Broker) transitiveSendAfterUnlock() {
	b.mu.Lock()
	n := 1
	b.mu.Unlock()
	_ = n
	b.emit() // lock released: fine
}

func (b *Broker) reviewedTransitiveSend() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.emit() //nyx:blocking fixture-reviewed: out is buffered and drained by the owner
}
