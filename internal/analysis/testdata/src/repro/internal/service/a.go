// Package service is the lockorder fixture: its import path is exactly
// repro/internal/service, one of the gated lock-owning packages. The pairs
// below exercise a direct two-lock cycle, a consistent (legal) order, a
// reviewed reversed edge, and a cross-package cycle that is only visible
// through the transitive locks-acquired facts of lodep.Acquire.
package service

import (
	"sync"

	"lodep"
)

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
	muG sync.Mutex
)

// holdsThenAcquireDep holds muG across a call whose callee transitively
// takes lodep.Mu; depThenLocal takes the same pair in the opposite order.
func holdsThenAcquireDep() {
	muG.Lock()
	lodep.Acquire() // want `lock acquisition order cycle: lodep\.Mu → service\.muG \(at .*\); service\.muG → lodep\.Mu \(at .* via lodep\.Acquire → lodep\.enter \(lodep\.Mu\.Lock at .*\)\)`
	muG.Unlock()
}

func depThenLocal() {
	lodep.Mu.Lock()
	muG.Lock()
	muG.Unlock()
	lodep.Mu.Unlock()
}

// forward and reversed take muA and muB in opposite orders: the classic
// two-path deadlock. The cycle is reported once, at its first edge.
func forward() {
	muA.Lock()
	muB.Lock() // want `lock acquisition order cycle: service\.muA → service\.muB \(at .*\); service\.muB → service\.muA \(at .*\)`
	muB.Unlock()
	muA.Unlock()
}

func reversed() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// consistentOne and consistentTwo agree on the order: no cycle.
func consistentOne() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func consistentTwo() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
}

// reviewedForward and reviewedReversed would form a cycle, but the reversed
// edge was reviewed: the directive removes it from the order graph.
func reviewedForward() {
	muE.Lock()
	muF.Lock()
	muF.Unlock()
	muE.Unlock()
}

func reviewedReversed() {
	muF.Lock()
	//nyx:lockorder fixture-reviewed: reviewedReversed never runs concurrently with reviewedForward
	muE.Lock()
	muE.Unlock()
	muF.Unlock()
}

// relockSameClass nests two acquisitions of one class: self edges are
// skipped (distinct instances of one type may nest safely).
type node struct{ mu sync.Mutex }

func relockSameClass(a, b *node) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
