// Package core is a nodeterm fixture: its import path is exactly
// repro/internal/core, one of the virtual-time packages, so every rule is
// live here — including the transitive checks through the ndep dependency.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ndep"
)

func wallClock() time.Duration {
	t0 := time.Now()                                // want `time\.Now in virtual-time package`
	return time.Since(time.Time{}) - time.Until(t0) // want `time\.Since in virtual-time package` `time\.Until in virtual-time package`
}

func allowedTrailing() time.Time {
	return time.Now() //nyx:wallclock fixture telemetry site
}

func allowedLineAbove() time.Time {
	//nyx:wallclock fixture telemetry site
	return time.Now()
}

// allowedFuncDoc is wholly a telemetry helper.
//
//nyx:wallclock fixture telemetry function
func allowedFuncDoc() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in virtual-time package`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are fine
	return r.Intn(10)
}

func allowedRand() float64 {
	return rand.Float64() //nyx:rand fixture-sanctioned jitter
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a later sort`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendLoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		n += len(doubled)
	}
	return n
}

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func writeInLoop(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `call to WriteString inside range over map`
	}
}

func sprintfStoredByKey(m map[string]int, out map[string]string) {
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v) // pure formatting into a map is order-insensitive
	}
}

func concatInLoop(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into "s" inside range over map`
	}
	return s
}

func breakInLoop(m map[string]int) {
	for range m {
		break // want `break inside range over map picks an arbitrary element`
	}
}

func returnPick(m map[string]int) string {
	for k := range m {
		return k // want `return of iteration variable picks an arbitrary element`
	}
	return ""
}

func returnConstFromLoop(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true // order-independent predicate: any hit returns the same value
		}
	}
	return false
}

func sumLoop(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // commutative aggregation stays legal
	}
	return n
}

func allowedMapOrder(m map[string]int) []string {
	var keys []string
	//nyx:maporder fixture: order provably washed out downstream
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func transitiveWallClock() time.Time {
	return ndep.Stamp() // want `transitively reads the wall clock: ndep\.Stamp → ndep\.clock \(time\.Now at `
}

func transitiveRand() int {
	return ndep.Roll() // want `transitively uses the global rand generator: ndep\.Roll → ndep\.dice \(rand\.Intn at `
}

func allowedTransitive() time.Time {
	return ndep.Stamp() //nyx:wallclock fixture: reviewed transitive telemetry read
}

func directCallee() time.Time {
	return time.Now() // want `time\.Now in virtual-time package`
}

func callerOfDirectCallee() time.Time {
	// The callee's package is itself gated: the violation is reported once,
	// at the direct site inside directCallee, not again here.
	return directCallee()
}
