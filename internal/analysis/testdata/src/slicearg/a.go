// Package slicearg is the slicearg fixture: exported functions must not
// retain caller-owned slice arguments past the call.
package slicearg

type Sink struct {
	buf   []byte
	lists [][]byte
	byKey map[string][]byte
	ch    chan []byte
}

func (s *Sink) Set(p []byte) {
	s.buf = p // want `exported Set retains caller-owned slice "p" past the call`
}

func (s *Sink) SetCopy(p []byte) {
	s.buf = append([]byte(nil), p...) // append(dst, p...) copies: fine
}

func (s *Sink) SetWindow(p []byte) {
	s.buf = p[2:8] // want `exported SetWindow retains caller-owned slice "p" past the call`
}

func (s *Sink) Keep(k string, p []byte) {
	s.byKey[k] = p // want `exported Keep retains caller-owned slice "p" past the call`
}

func (s *Sink) KeepElem(p []byte) {
	s.lists = append(s.lists, p) // want `exported KeepElem retains caller-owned slice "p" past the call`
}

func (s *Sink) AppendInPlace(p []byte, b byte) {
	s.buf = append(p, b) // want `exported AppendInPlace retains caller-owned slice "p" past the call`
}

func (s *Sink) Send(p []byte) {
	s.ch <- p // want `exported Send retains caller-owned slice "p" past the call`
}

var global []byte

func SetGlobal(p []byte) {
	global = p // want `exported SetGlobal retains caller-owned slice "p" past the call`
}

func (s *Sink) LocalUseOnly(p []byte) int {
	local := p // a local alias does not outlive the call by itself
	n := 0
	for _, b := range local {
		n += int(b)
	}
	return n
}

// keep is unexported: ownership conventions are the package's own business.
func (s *Sink) keep(p []byte) {
	s.buf = p
}

// TakeOwnership documents the transfer.
//
//nyx:retains fixture: callee owns p from here on
func (s *Sink) TakeOwnership(p []byte) {
	s.buf = p
}

func (s *Sink) ReviewedInline(p []byte) {
	s.buf = p //nyx:retains fixture: reviewed ownership transfer
}
