// Package core shares its base name with the gated virtual-time package
// repro/internal/core but lives at a different import path. Analyzer gating
// matches full import paths, so nothing here is flagged; under the old
// base-name matching this whole file would light up.
package core

import (
	"math/rand"
	"time"
)

func wallClockIsFineHere() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}

func mapOrderIsFineHere(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
