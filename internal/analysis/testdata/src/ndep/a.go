// Package ndep is a dependency fixture for the nodeterm transitive tests:
// it is not a virtual-time package itself, and it hides its wall-clock and
// rand reads one helper deep, so a gated caller can only see them through
// fact propagation (a direct-call check provably misses them).
package ndep

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock two calls away from any gated caller.
func Stamp() time.Time { return clock() }

func clock() time.Time { return time.Now() }

// Roll consults the global rand generator two calls away from any gated
// caller.
func Roll() int { return dice() }

func dice() int { return rand.Intn(6) }
