// Package lodep is a dependency fixture for the lockorder tests: it owns a
// package-level mutex that a gated package acquires both directly and
// through Acquire, whose own acquisition sits one more call down so only
// fact propagation can see it.
package lodep

import "sync"

// Mu is the cross-package lock class lodep.Mu.
var Mu sync.Mutex

// Acquire takes and releases Mu via an internal helper.
func Acquire() { enter() }

func enter() {
	Mu.Lock()
	Mu.Unlock()
}
