// Package other is the nodeterm negative fixture: its import path does not
// end in a virtual-time package name, so nothing here is flagged even though
// every forbidden construct appears.
package other

import (
	"math/rand"
	"time"
)

func wallClockIsFineHere() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}

func mapOrderIsFineHere(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
