// Package hdep is a dependency fixture for the hotalloc transitive tests:
// Build allocates one helper deep, so a //nyx:hotpath caller only sees the
// allocation through the propagated allocates fact.
package hdep

// Build returns a fresh buffer via an internal helper.
func Build() []byte { return grow() }

func grow() []byte { return make([]byte, 64) }

// Reviewed allocates too, but the site carries //nyx:alloc, so the fact is
// suppressed at the source and callers are not tainted.
func Reviewed() []byte {
	return make([]byte, 64) //nyx:alloc fixture: reviewed cold path
}
