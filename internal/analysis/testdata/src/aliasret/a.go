// Package aliasret is the aliasret fixture: exported functions must not
// return slices or maps aliasing unexported state.
package aliasret

import "maps"

type Buf struct {
	data  []byte
	stats map[string]int
	inner struct{ rows [][]int }
}

func (b *Buf) Data() []byte { // exported getter aliasing an unexported field
	return b.data // want `exported Data returns \[\]byte aliasing unexported field data`
}

func (b *Buf) Stats() map[string]int {
	return b.stats // want `exported Stats returns map\[string\]int aliasing unexported field stats`
}

func (b *Buf) Window() []byte {
	return b.data[1:3] // want `exported Window returns \[\]byte aliasing unexported field data`
}

func (b *Buf) Row(i int) []int {
	return b.inner.rows[i] // want `exported Row returns \[\]int aliasing unexported field`
}

func (b *Buf) DataCopy() []byte {
	return append([]byte(nil), b.data...)
}

func (b *Buf) StatsCopy() map[string]int {
	return maps.Clone(b.stats)
}

func (b *Buf) Fresh() []byte {
	local := make([]byte, 4)
	return local
}

// Documented zero-copy contract, suppressed inline.
func (b *Buf) RawData() []byte {
	return b.data //nyx:aliased fixture: documented zero-copy accessor
}

// RawStats is wholly a zero-copy accessor.
//
//nyx:aliased fixture: documented zero-copy accessor
func (b *Buf) RawStats() map[string]int {
	return b.stats
}

// unexported functions are not the API boundary.
func (b *Buf) data2() []byte {
	return b.data
}

var registry []string

func Registry() []string {
	return registry // want `exported Registry returns \[\]string aliasing package-level state registry`
}

func Passthrough(p []byte) []byte {
	return p // caller-owned in, caller-owned out: not internal state
}

// ByValue still aliases the original backing array even though the receiver
// struct itself is a copy.
func (b Buf) ByValue() []byte {
	return b.data // want `exported ByValue returns \[\]byte aliasing unexported field data`
}
