// Package other is the lockheld negative fixture: blocking under a lock is
// only gated in broker/service/pool packages, not here.
package other

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

func (t *T) SendUnderLockIsFineHere() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ch <- 1
}
