// Package hotalloc is the hotalloc fixture: only functions whose doc
// comment carries //nyx:hotpath are gated, and everything else allocates
// freely. The cases cover every direct allocation rule, the
// caller-presized and scratch-reuse patterns that stay legal, reviewed
// //nyx:alloc sites, and transitive allocations through the hdep
// dependency.
package hotalloc

import (
	"fmt"

	"hdep"
)

type ring struct {
	buf []byte
	out []int
}

//nyx:hotpath
func makesSlice(n int) []byte {
	return make([]byte, n) // want `make in //nyx:hotpath function makesSlice`
}

//nyx:hotpath
func escapingComposite() *ring {
	return &ring{} // want `escaping composite literal .* in //nyx:hotpath function escapingComposite`
}

//nyx:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf \(allocates\) in //nyx:hotpath function formats`
}

//nyx:hotpath
func stringConv(b []byte) string {
	return string(b) // want `string\(\[\]byte\) conversion \(copies\) in //nyx:hotpath function stringConv`
}

//nyx:hotpath
func growsLocal(xs []int) int {
	var tmp []int
	for _, x := range xs {
		tmp = append(tmp, x) // want `append grows un-presized local slice "tmp" in //nyx:hotpath function growsLocal`
	}
	return len(tmp)
}

//nyx:hotpath
func zeroCapReslice(r *ring) {
	r.buf = append(r.buf[:0:0], 1) // want `append to a zero-capacity reslice`
}

// reusesScratch is the pattern the hot path is built on: truncate a field
// slice in place and refill it, reusing the backing array.
//
//nyx:hotpath
func reusesScratch(r *ring, xs []int) {
	r.out = r.out[:0]
	for _, x := range xs {
		r.out = append(r.out, x)
	}
}

//nyx:hotpath
func paramAppend(dst []int, x int) []int {
	return append(dst, x) // caller presizes dst: exempt
}

func unmarkedAllocatesFreely(n int) []byte {
	return make([]byte, n) // not //nyx:hotpath: no gate
}

//nyx:hotpath
func reviewedColdPath(ok bool) []byte {
	if !ok {
		return make([]byte, 8) //nyx:alloc fixture: failure path, taken at most once per campaign
	}
	return nil
}

//nyx:hotpath
func callsDep() []byte {
	return hdep.Build() // want `call from //nyx:hotpath function callsDep allocates: hdep\.Build → hdep\.grow \(make at `
}

//nyx:hotpath
func callsReviewedDep() []byte {
	return hdep.Reviewed() // fact suppressed at its source: clean
}

//nyx:hotpath
func reviewedTransitiveCall() []byte {
	return hdep.Build() //nyx:alloc fixture: reviewed resize-on-overflow path
}

//nyx:hotpath
func callsMarkedHelper(n int) []byte {
	return makesSlice(n) // callee is itself //nyx:hotpath: flagged at its own site, not here
}
