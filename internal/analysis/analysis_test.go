package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestAppliesTo(t *testing.T) {
	cases := []struct {
		pkgs []string
		path string
		want bool
	}{
		{nil, "repro/internal/anything", true},
		{[]string{"repro/internal/core"}, "repro/internal/core", true},
		// Full import paths match exactly: a package that merely shares the
		// base name (the old matching rule) must not be gated.
		{[]string{"repro/internal/core"}, "othermod/internal/core", false},
		{[]string{"repro/internal/core"}, "core", false},
		{[]string{"repro/internal/core"}, "repro/internal/coverage", false},
		{[]string{"repro/internal/core", "repro/internal/vm"}, "repro/internal/vm", true},
	}
	for _, c := range cases {
		a := &Analyzer{Name: "x", PkgPaths: c.pkgs}
		if got := a.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%v, %q) = %v, want %v", c.pkgs, c.path, got, c.want)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//nyx:wallclock telemetry site", "wallclock", true},
		{"//nyx:maporder", "maporder", true},
		{"// nyx:wallclock", "", false}, // directives allow no space after //
		{"//nyx:", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseDirective(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

func TestDirectiveIndex(t *testing.T) {
	const src = `package p

//nyx:wallclock doc directive covers the whole function
func f() {
	g()
}

func g() {
	h() //nyx:rand same line
	//nyx:maporder line above
	h()
	h()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := indexDirectives(fset, []*ast.File{f})
	posAt := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !idx.allowed(fset, posAt(5), "wallclock") {
		t.Error("function-doc directive should cover statements in the function")
	}
	if !idx.allowed(fset, posAt(9), "rand") {
		t.Error("same-line directive should allow")
	}
	if !idx.allowed(fset, posAt(11), "maporder") {
		t.Error("line-above directive should allow")
	}
	if idx.allowed(fset, posAt(12), "maporder") {
		t.Error("directive two lines up must not allow")
	}
	if idx.allowed(fset, posAt(9), "wallclock") {
		t.Error("g is not covered by f's doc directive")
	}
}
