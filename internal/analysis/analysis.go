// Package analysis is nyx-vet's repo-specific analyzer suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus an offline package loader, used
// to mechanically enforce the determinism, aliasing, and locking invariants
// this repository's virtual-time design depends on.
//
// The container building this repository has no module proxy access, so the
// framework deliberately uses only the standard library: packages are
// discovered with `go list -deps -json` and type-checked with go/types
// (see load.go). The analyzer API mirrors x/tools closely enough that the
// analyzers could be ported to real go/analysis verbatim if the dependency
// ever becomes available.
//
// # Invariants enforced
//
//   - nodeterm: virtual-time packages must not read the wall clock, use the
//     global math/rand generator, or let map iteration order escape into
//     outputs. Coverage columns across PRs are compared byte-for-byte
//     (PR 5's hotpath refactor was accepted only because its coverage output
//     was identical to PR 4's), so any hidden nondeterminism breaks the
//     repo's reproducibility contract.
//   - aliasret: exported functions must not return slices or maps that alias
//     unexported struct state (the DirtyPages bug class fixed in PR 4, where
//     an internal page set escaped through the API and later mutations
//     corrupted the caller's view).
//   - lockheld: no blocking operation (channel send/receive, select without
//     default, WaitGroup.Wait, time.Sleep, network or store I/O) may be
//     reachable while a broker/service/pool mutex is held.
//   - slicearg: exported functions must not retain caller-owned slice
//     arguments past the call (the retained-trace bug class the broker's
//     orderImportsInto scratch rework avoided by hand in PR 5).
//   - lockorder: the mutex-acquisition partial order across the broker,
//     service manager, snapshot pool, and checkpoint store must stay
//     acyclic — the deadlock-freedom guardrail for the broker-sharding
//     refactor.
//   - hotalloc: functions marked //nyx:hotpath (slot restore, snapshot
//     lookup, coverage bucketing, the netemu resumed-run path) must not
//     heap-allocate, directly or through any call chain.
//
// # Interprocedural layer
//
// nodeterm, lockheld, lockorder, and hotalloc are backed by a whole-program
// fact engine (callgraph.go, facts.go): a call graph over every loaded
// package — static calls plus CHA resolution of interface method calls —
// carries per-function summaries (reads-wallclock, uses-global-rand,
// may-block, locks-acquired, allocates) to a fixed point. Diagnostics for
// transitive findings include the full witness chain, e.g.
//
//	call that may block: campaign.(*Broker).flush (channel send at broker.go:88) while b.mu is held
//
// so a suppression is reviewable without re-deriving the path by hand. A
// directive placed at the *source* site (the time.Now call, the allocation)
// suppresses the fact itself: a reviewed source does not taint its callers.
//
// # Directives
//
// Deliberate exceptions are annotated in source with a directive comment on
// the flagged line, the line above it, or the enclosing function's doc
// comment, always with a reason:
//
//	//nyx:wallclock <why>  - wall-clock telemetry site (nodeterm)
//	//nyx:rand <why>       - deliberate global-rand use (nodeterm)
//	//nyx:maporder <why>   - map iteration order provably cannot escape (nodeterm)
//	//nyx:aliased <why>    - documented zero-copy return (aliasret)
//	//nyx:blocking <why>   - reviewed blocking call under lock (lockheld)
//	//nyx:retains <why>    - documented ownership transfer (slicearg)
//	//nyx:lockorder <why>  - reviewed acquisition-order edge (lockorder)
//	//nyx:hotpath          - marks a function as allocation-free hot path (hotalloc)
//	//nyx:alloc <why>      - reviewed cold-path allocation (hotalloc)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one nyx-vet check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks stay portable.
type Analyzer struct {
	Name string
	Doc  string

	// PkgPaths restricts the analyzer to packages with exactly these import
	// paths (e.g. "repro/internal/core"). An empty list applies the
	// analyzer to every package. Matching is on the full path: gating by
	// the path's base name would also capture unrelated dependencies that
	// happen to end in the same element (any future dep ending in /core
	// would silently inherit the virtual-time contract).
	PkgPaths []string

	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.PkgPaths) == 0 {
		return true
	}
	for _, p := range a.PkgPaths {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// Diagnostic is a single finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	// Prog is the interprocedural view over every package in the Run: the
	// call graph and the transitive fact summaries (see callgraph.go and
	// facts.go). Analyzers consult it for reachability checks; purely
	// intraprocedural analyzers can ignore it.
	Prog *Program

	Report func(Diagnostic)

	directives *directiveIndex
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether the finding at node is suppressed by a
// //nyx:<name> directive: on the node's line, on the line directly above it,
// or in the doc comment of the function declaration enclosing it.
func (p *Pass) Allowed(node ast.Node, name string) bool {
	if p.directives == nil {
		p.directives = indexDirectives(p.Fset, p.Files)
	}
	return p.directives.allowed(p.Fset, node.Pos(), name)
}

// directiveIndex records every //nyx: directive by file position.
type directiveIndex struct {
	// lines maps "file:line" of a directive comment to the directive names
	// present on that line.
	lines map[string]map[string]bool
	// funcs holds, per file, the position ranges of function declarations
	// whose doc comment carries directives.
	funcs []funcDirectives
}

type funcDirectives struct {
	pos, end token.Pos
	names    map[string]bool
}

const directivePrefix = "//nyx:"

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{lines: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey(pos.Filename, pos.Line)
				if idx.lines[key] == nil {
					idx.lines[key] = make(map[string]bool)
				}
				idx.lines[key][name] = true
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fd.Doc.List {
				if name, ok := parseDirective(c.Text); ok {
					names[name] = true
				}
			}
			if len(names) > 0 {
				idx.funcs = append(idx.funcs, funcDirectives{pos: fd.Pos(), end: fd.End(), names: names})
			}
		}
	}
	return idx
}

func parseDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

func (idx *directiveIndex) allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	if idx.lines[lineKey(p.Filename, p.Line)][name] {
		return true
	}
	if idx.lines[lineKey(p.Filename, p.Line-1)][name] {
		return true
	}
	for _, fd := range idx.funcs {
		if fd.names[name] && pos >= fd.pos && pos < fd.end {
			return true
		}
	}
	return false
}

// Run applies every applicable analyzer to every package and returns the
// diagnostics sorted by position then analyzer name. The interprocedural
// Program (call graph + fact summaries) is built once over all packages and
// shared by every pass, so transitive reasoning spans exactly the packages
// handed to Run: `nyx-vet ./...` sees the whole module, a single-package
// unit-mode run degrades gracefully to that package's own bodies.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := buildProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				Prog:      prog,
			}
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if fset != nil {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// All returns the full nyx-vet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{NoDeterm, AliasRet, LockHeld, SliceArg, LockOrder, HotAlloc}
}
