package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The transitive golden cases hide their source two calls deep, so a
// finding must flow through at least one round of fact propagation to be
// seen. Running the same fixture with propagation disabled (round bound 0
// degrades every analyzer to its intraprocedural version) must lose exactly
// those findings: this proves both that the old direct-call checks miss
// them and that silently breaking the fact engine fails the golden
// fixtures, which expect the findings via want comments.
func TestTransitiveFindingsRequirePropagation(t *testing.T) {
	cases := []struct {
		name    string
		a       *analysis.Analyzer
		pkgPath string
		deps    []string
		marker  string // substring present only in the transitive finding
	}{
		{"nodeterm", analysis.NoDeterm, "repro/internal/core", []string{"ndep"},
			"transitively reads the wall clock: ndep.Stamp → ndep.clock"},
		{"lockheld", analysis.LockHeld, "repro/internal/campaign", nil,
			"call that may block: campaign.(*Broker).emit → campaign.(*Broker).relay"},
		{"lockorder", analysis.LockOrder, "repro/internal/service", []string{"lodep"},
			"via lodep.Acquire → lodep.enter"},
		{"hotalloc", analysis.HotAlloc, "hotalloc", []string{"hdep"},
			"callsDep allocates: hdep.Build → hdep.grow"},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			full := analysistest.Diagnostics(t, "testdata", c.a, c.pkgPath, c.deps...)
			if !anyContains(full, c.marker) {
				t.Fatalf("with propagation, expected a diagnostic containing %q; got %q", c.marker, full)
			}

			restore := analysis.SetMaxPropagationRoundsForTest(0)
			defer restore()
			degraded := analysistest.Diagnostics(t, "testdata", c.a, c.pkgPath, c.deps...)
			if anyContains(degraded, c.marker) {
				t.Fatalf("without propagation, diagnostic containing %q should disappear; got %q", c.marker, degraded)
			}
		})
	}
}

func anyContains(msgs []string, sub string) bool {
	for _, m := range msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}
