package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is the interprocedural view shared by every pass of one Run: a
// call graph over all loaded target packages (the ones with full bodies)
// and the per-function fact summaries computed over it. Dependencies loaded
// API-only contribute no nodes; calls into them resolve to nil targets and
// simply terminate propagation, which is what keeps the fact engine seeded
// exclusively by source the repository owns.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	byPath map[string]*Package
	// funcs maps every declared function/method in a target package to its
	// node. Function literals are folded into their enclosing declaration.
	funcs map[*types.Func]*FuncNode
	// nodes is funcs in deterministic order: (package path, position).
	nodes []*FuncNode
	// implementers, per interface method "I.m" identity, lists the concrete
	// methods CHA resolves a dynamic call to. Keyed by the interface
	// *types.Func of the method.
	implementers map[*types.Func][]*types.Func
	// directives indexes //nyx: comments per package so fact generation can
	// honour source-site suppressions before any pass runs.
	directives map[string]*directiveIndex

	facts map[*types.Func]*funcFacts

	// lockEdges is the mutex-acquisition partial order observed anywhere in
	// the program: an edge A->B means some path acquires class B while
	// holding class A.
	lockEdges []*lockEdge
}

// FuncNode is one declared function or method in a target package.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the node's resolved outgoing call sites in source order.
	Calls []*CallSite
}

// CallSite is one resolved call expression inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Callees lists the possible static targets: a single *types.Func for a
	// direct call, or every CHA-resolved concrete method for a call through
	// an interface. Empty for calls through plain func values.
	Callees []*types.Func
	// ViaGo marks a call made inside a `go`-launched or deferred function
	// literal (or a direct `go f()`/`defer f()` statement): nondeterminism
	// facts still flow to the spawner, but may-block and lock facts do not —
	// the spawning goroutine neither blocks on nor holds locks for it.
	ViaGo bool
}

// buildProgram constructs the call graph and computes fact summaries for
// the given target packages.
func buildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:         pkgs,
		byPath:       make(map[string]*Package),
		funcs:        make(map[*types.Func]*FuncNode),
		implementers: make(map[*types.Func][]*types.Func),
		directives:   make(map[string]*directiveIndex),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		prog.byPath[pkg.PkgPath] = pkg
		prog.directives[pkg.PkgPath] = indexDirectives(pkg.Fset, pkg.Files)
	}
	prog.collectNodes()
	prog.buildCHA()
	prog.resolveCalls()
	prog.computeFacts()
	prog.collectLockEdges()
	return prog
}

// pkgDirectives returns the //nyx: directive index for a loaded package.
func (prog *Program) pkgDirectives(pkgPath string) *directiveIndex {
	return prog.directives[pkgPath]
}

// node returns the FuncNode for fn, or nil when fn is not a target-package
// function (stdlib, API-only dependency, or unresolved).
func (prog *Program) node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return prog.funcs[fn]
}

func (prog *Program) collectNodes() {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg}
				prog.funcs[obj] = node
				prog.nodes = append(prog.nodes, node)
			}
		}
	}
	sort.Slice(prog.nodes, func(i, j int) bool {
		a, b := prog.nodes[i], prog.nodes[j]
		if a.Pkg.PkgPath != b.Pkg.PkgPath {
			return a.Pkg.PkgPath < b.Pkg.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
}

// buildCHA records, for every interface method reachable from target
// packages, the concrete methods implementing it on named types declared in
// target packages — class-hierarchy analysis over the code the repository
// owns. Calls through vm.Device, store.Storer, core.Target and friends
// resolve to every in-module implementation.
func (prog *Program) buildCHA() {
	// Concrete named types declared in target packages.
	var concrete []*types.Named
	// Interfaces worth indexing: declared in target packages, or used as
	// the static type of a call receiver there (collected lazily below from
	// method sets of the concrete types).
	ifaceSeen := make(map[*types.TypeName]bool)
	var ifaces []*types.Named

	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				if !ifaceSeen[tn] {
					ifaceSeen[tn] = true
					ifaces = append(ifaces, named)
				}
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	// Interfaces imported from API-only dependencies still matter when a
	// target type implements them; index every named interface mentioned in
	// any target package's type uses. Iterate deterministically later — the
	// resulting implementers lists are sorted, so collection order is moot.
	for _, pkg := range prog.Pkgs {
		for _, obj := range pkg.TypesInfo.Uses {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() || ifaceSeen[tn] {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && types.IsInterface(named) {
				ifaceSeen[tn] = true
				ifaces = append(ifaces, named)
			}
		}
	}

	for _, iface := range ifaces {
		it, ok := iface.Underlying().(*types.Interface)
		if !ok || it.NumMethods() == 0 {
			continue
		}
		for _, impl := range concrete {
			ptr := types.NewPointer(impl)
			implements := types.Implements(impl, it) || types.Implements(ptr, it)
			if !implements {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, impl.Obj().Pkg(), im.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				prog.implementers[im] = append(prog.implementers[im], cm)
			}
		}
	}
	for im, impls := range prog.implementers {
		sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
		prog.implementers[im] = impls
	}
}

// resolveCalls walks every node's body recording call sites and their
// static targets.
func (prog *Program) resolveCalls() {
	for _, node := range prog.nodes {
		prog.resolveNodeCalls(node)
	}
}

func (prog *Program) resolveNodeCalls(node *FuncNode) {
	info := node.Pkg.TypesInfo
	// goDepth counts enclosing go/defer function literals (and direct
	// go/defer call statements) around the current position.
	var walk func(n ast.Node, viaGo bool)
	walk = func(n ast.Node, viaGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				prog.addCall(node, info, m.Call, true)
				walkDetachedCall(m.Call, viaGo, walk)
				return false
			case *ast.DeferStmt:
				prog.addCall(node, info, m.Call, true)
				walkDetachedCall(m.Call, viaGo, walk)
				return false
			case *ast.CallExpr:
				prog.addCall(node, info, m, viaGo)
				return true
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	sort.Slice(node.Calls, func(i, j int) bool { return node.Calls[i].Pos < node.Calls[j].Pos })
}

// walkDetachedCall continues a walk through a go/defer statement: the
// called function literal's body runs detached (another goroutine, or after
// the function's own unlocks), so calls inside it are viaGo; argument
// expressions evaluate immediately and keep the surrounding context.
func walkDetachedCall(call *ast.CallExpr, viaGo bool, walk func(ast.Node, bool)) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walk(lit.Body, true)
	}
	for _, arg := range call.Args {
		walk(arg, viaGo)
	}
}

func (prog *Program) addCall(node *FuncNode, info *types.Info, call *ast.CallExpr, viaGo bool) {
	site := &CallSite{Call: call, Pos: call.Pos(), ViaGo: viaGo}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			site.Callees = []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			break
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				// Dynamic dispatch: CHA gives the possible concrete targets.
				site.Callees = prog.implementers[fn]
				break
			}
		}
		site.Callees = []*types.Func{fn}
	case *ast.FuncLit:
		// Immediately-invoked literal: body already walked inline.
	}
	if len(site.Callees) == 0 {
		// Unresolved (func value, builtin, conversion, literal): facts
		// cannot flow through the site, so there is nothing to record.
		return
	}
	node.Calls = append(node.Calls, site)
}
