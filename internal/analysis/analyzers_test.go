package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each fixture is a golden test: every flagged line carries a want comment,
// and the run fails both on a missing diagnostic (the analyzer regressed)
// and on an extra one (a false positive crept in).

func TestNoDetermFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoDeterm, "repro/internal/core", "ndep")
}

func TestNoDetermIgnoresUngatedPackages(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoDeterm, "nodeterm/other")
}

// TestNoDetermIgnoresCollidingPackagePaths pins the full-path gating fix:
// othermod/internal/core shares its base name with the gated
// repro/internal/core but must not be analyzed.
func TestNoDetermIgnoresCollidingPackagePaths(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoDeterm, "othermod/internal/core")
}

func TestAliasRetFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AliasRet, "aliasret")
}

func TestLockHeldFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockHeld, "repro/internal/campaign")
}

func TestLockHeldIgnoresUngatedPackages(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockHeld, "lockheld/other")
}

func TestSliceArgFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SliceArg, "slicearg")
}

func TestLockOrderFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrder, "repro/internal/service", "lodep")
}

func TestHotAllocFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotalloc", "hdep")
}
