package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each fixture is a golden test: every flagged line carries a want comment,
// and the run fails both on a missing diagnostic (the analyzer regressed)
// and on an extra one (a false positive crept in).

func TestNoDetermFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoDeterm, "nodeterm/core")
}

func TestNoDetermIgnoresUngatedPackages(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoDeterm, "nodeterm/other")
}

func TestAliasRetFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AliasRet, "aliasret")
}

func TestLockHeldFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockHeld, "lockheld/campaign")
}

func TestLockHeldIgnoresUngatedPackages(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockHeld, "lockheld/other")
}

func TestSliceArgFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SliceArg, "slicearg")
}
