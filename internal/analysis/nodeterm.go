package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// virtualTimePkgs are the packages whose behaviour must be a pure function
// of (spec, seed, virtual time): everything on the fuzzing hot path, the
// campaign layer whose checkpoints must replay bit-for-bit, and the service
// layer whose event feeds must be resume-equivalent across backends.
var virtualTimePkgs = []string{
	"repro/internal/core",
	"repro/internal/campaign",
	"repro/internal/coverage",
	"repro/internal/snappool",
	"repro/internal/mem",
	"repro/internal/device",
	"repro/internal/vm",
	"repro/internal/netemu",
	"repro/internal/spec",
	"repro/internal/service",
}

// NoDeterm forbids wall-clock reads, global math/rand use, and map-iteration
// order escaping into outputs inside virtual-time packages.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: `forbid nondeterminism sources in virtual-time packages

Virtual-time packages must produce byte-identical outputs for identical
(spec, seed, virtual-time) inputs: campaign resume-equivalence and the
cross-PR coverage-column comparisons depend on it. This analyzer flags
time.Now/Since/Until, the global math/rand generator, and range-over-map
loops whose iteration order can escape (append to an outer slice that is
never sorted, writes to an encoder/printer, or an early exit). Calls into
non-gated module code that transitively reaches the wall clock or global
rand are flagged at the call site with the full chain. Annotate deliberate
telemetry sites with //nyx:wallclock, seeded-elsewhere rand with
//nyx:rand, and provably order-insensitive loops with //nyx:maporder.`,
	PkgPaths: virtualTimePkgs,
	Run:      runNoDeterm,
}

// globalRandFns are the math/rand package-level functions that consult the
// shared global generator. Constructors (New, NewSource, NewZipf) are
// excluded: a fuzzer-seeded *rand.Rand is the deterministic way to get
// randomness.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func runNoDeterm(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(pass, n)
				checkGlobalRand(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	checkTransitiveNoDeterm(pass)
	return nil
}

// checkTransitiveNoDeterm flags calls from this virtual-time package into
// non-gated module code that transitively reads the wall clock or the
// global rand generator — the one-call-deep escape the intraprocedural
// checks cannot see. Callees in gated packages are skipped: their own pass
// reports the violation (direct or transitive) at the frame closest to the
// source, so each chain is reported exactly once.
func checkTransitiveNoDeterm(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	kinds := []struct {
		kind      factKind
		directive string
		what      string
	}{
		{factWallclock, "wallclock", "reads the wall clock"},
		{factRand, "rand", "uses the global rand generator"},
	}
	for _, node := range prog.nodes {
		if node.Pkg.PkgPath != pass.PkgPath {
			continue
		}
		for _, site := range node.Calls {
			for _, k := range kinds {
				for _, callee := range site.Callees {
					if pass.Analyzer.AppliesTo(calleePkgPath(callee)) {
						continue
					}
					ff := prog.factsOf(callee)
					if ff == nil || !ff.has[k.kind] {
						continue
					}
					if !pass.Allowed(site.Call, k.directive) {
						pass.Reportf(site.Pos, "call from virtual-time package %s transitively %s: %s (annotate a reviewed site with //nyx:%s)",
							pass.PkgPath, k.what, prog.chain(callee, k.kind), k.directive)
					}
					break // one report per site per fact kind
				}
			}
		}
	}
}

func calleePkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// calleeFunc resolves a call's callee to a *types.Func when it is a direct
// (possibly selector-qualified) function or method reference.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
	default:
		return
	}
	if pass.Allowed(call, "wallclock") {
		return
	}
	pass.Reportf(call.Pos(), "time.%s in virtual-time package %s: use virtual time, or annotate a telemetry site with //nyx:wallclock", fn.Name(), pass.PkgPath)
}

func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	// Methods on *rand.Rand are fine: they are seeded by the caller.
	if fn.Signature().Recv() != nil || !globalRandFns[fn.Name()] {
		return
	}
	if pass.Allowed(call, "rand") {
		return
	}
	pass.Reportf(call.Pos(), "global rand.%s in virtual-time package %s: use a seeded *rand.Rand, or annotate with //nyx:rand", fn.Name(), pass.PkgPath)
}

// checkMapRange flags range-over-map loops whose iteration order can escape:
//   - appending to a slice declared outside the loop that is never passed to
//     a sort function later in the same function;
//   - writing/printing/encoding inside the loop body;
//   - early exit (break, or a return mentioning the iteration variables).
//
// Order-insensitive bodies — aggregation into sums, counters, sets, or other
// maps — are not flagged.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.Allowed(rng, "maporder") {
		return
	}
	loopVars := rangeVarObjects(pass, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				// s += ... on a string accumulates in iteration order;
				// numeric += is commutative and stays legal.
				if t := pass.TypesInfo.Types[n.Lhs[0]].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if dest := rootIdentObject(pass, n.Lhs[0]); dest != nil && !withinNode(rng, dest) {
							pass.Reportf(n.Pos(), "map iteration order escapes: string concatenation into %q inside range over map (sort the keys first, or //nyx:maporder)", dest.Name())
						}
					}
				}
			}
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
					continue
				}
				dest := rootIdentObject(pass, call.Args[0])
				if dest == nil || withinNode(rng, dest) {
					continue // appending to a loop-local slice
				}
				if sortedAfter(pass, file, rng, dest) {
					continue // canonical collect-then-sort pattern
				}
				pass.Reportf(n.Pos(), "map iteration order escapes: append to %q inside range over map without a later sort (//nyx:maporder to suppress)", dest.Name())
			}
		case *ast.CallExpr:
			if name, ok := orderSensitiveSink(pass, n); ok {
				pass.Reportf(n.Pos(), "map iteration order escapes: %s inside range over map (sort the keys first, or //nyx:maporder)", name)
			}
		case *ast.BranchStmt:
			if n.Tok.String() == "break" && n.Label == nil {
				pass.Reportf(n.Pos(), "map iteration order escapes: break inside range over map picks an arbitrary element (//nyx:maporder to suppress)")
			}
		case *ast.ReturnStmt:
			if returnMentions(pass, n, loopVars) {
				pass.Reportf(n.Pos(), "map iteration order escapes: return of iteration variable picks an arbitrary element (//nyx:maporder to suppress)")
			}
		case *ast.RangeStmt:
			// Nested loops are inspected on their own visit.
		}
		return true
	})
}

func rangeVarObjects(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdentObject walks selector/index/slice chains down to the base
// identifier and returns its object.
func rootIdentObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// withinNode reports whether obj is declared inside node.
func withinNode(node ast.Node, obj types.Object) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether obj is passed to a sort/slices ordering
// function after the loop, anywhere later in the enclosing function.
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	fn := enclosingFunc(file, rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if rootIdentObject(pass, arg) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var found ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				found = n
			}
		}
		return true
	})
	return found
}

// orderSensitiveSink reports whether the call writes, prints, or encodes —
// operations whose output depends on the order they are reached in.
func orderSensitiveSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && fn.Signature().Recv() == nil {
		// Pure formatters (Sprintf and friends) do not escape order by
		// themselves; only actual output calls do.
		if pkg.Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	for _, prefix := range []string{"Write", "Encode", "Print", "Fprint", "Marshal"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return "call to " + fn.Name(), true
		}
	}
	return "", false
}

func returnMentions(pass *Pass, ret *ast.ReturnStmt, vars map[types.Object]bool) bool {
	if len(vars) == 0 {
		return false
	}
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && vars[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return true
		})
	}
	return found
}
