package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder flags cycles in the mutex-acquisition partial order.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: `forbid cycles in the mutex-acquisition order

The campaign broker, service manager, snapshot pool, and checkpoint store
each own mutexes that worker goroutines take on overlapping paths; two
paths acquiring the same pair of locks in opposite order deadlock the
fleet. The analyzer classes every sync.Mutex/RWMutex by the variable that
owns it (pkg.Type.field or pkg.var), records an edge A -> B whenever B is
acquired — directly or via a call chain — while A is held, and reports any
cycle in the resulting order graph. Same-class self edges are skipped (two
instances of one type may nest safely). A reviewed edge carries
//nyx:lockorder <why> on the inner acquisition or call site.`,
	PkgPaths: []string{
		"repro/internal/campaign",
		"repro/internal/service",
		"repro/internal/snappool",
		"repro/internal/store",
	},
	Run: runLockOrder,
}

// lockEdge records one observed acquisition ordering: to was acquired
// while from was held, at pos (in pkgPath), possibly via a call chain
// starting at viaFn.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkgPath  string
	viaChain string // empty for a direct inner Lock
}

// collectLockEdges derives the program-wide acquisition-order graph from
// intraprocedural held regions plus the transitive locks-acquired facts.
func (prog *Program) collectLockEdges() {
	for _, node := range prog.nodes {
		prog.collectNodeLockEdges(node)
	}
	sort.Slice(prog.lockEdges, func(i, j int) bool {
		a, b := prog.lockEdges[i], prog.lockEdges[j]
		if a.pkgPath != b.pkgPath {
			return a.pkgPath < b.pkgPath
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.from+a.to < b.from+b.to
	})
}

// heldInterval is one position range during which a lock class is held.
type heldInterval struct {
	class    string
	from, to token.Pos
}

func (prog *Program) collectNodeLockEdges(node *FuncNode) {
	pkg := node.Pkg
	body := node.Decl.Body

	// Phase 1: intraprocedural held intervals and direct Lock sites, using
	// the same region shape as lockheld (defer-Unlock holds to the end of
	// the function body).
	var intervals []heldInterval
	type lockSite struct {
		class string
		pos   token.Pos
	}
	var locks []lockSite

	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if class, ok := prog.lockClassOfCall(pkg, call, "Lock", "RLock"); ok {
						locks = append(locks, lockSite{class, call.Pos()})
						from, to := classRegionAfterLock(prog, pkg, stmts[i+1:], body, class)
						intervals = append(intervals, heldInterval{class, from, to})
						continue
					}
				}
			}
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				walkBlock(s.List)
			case *ast.IfStmt:
				walkBlock(s.Body.List)
				if alt, ok := s.Else.(*ast.BlockStmt); ok {
					walkBlock(alt.List)
				}
			case *ast.ForStmt:
				walkBlock(s.Body.List)
			case *ast.RangeStmt:
				walkBlock(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
			}
		}
	}
	walkBlock(body.List)

	add := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return
		}
		if prog.allowedAt(pkg, pos, "lockorder") {
			return
		}
		prog.lockEdges = append(prog.lockEdges, &lockEdge{
			from: from, to: to, pos: pos, pkgPath: pkg.PkgPath, viaChain: via,
		})
	}

	for _, iv := range intervals {
		// Direct nested acquisitions. The interval starts at the statement
		// after the outer Lock, so an inner Lock sitting right there is in
		// the region (the outer lock's own site lies before it).
		for _, ls := range locks {
			if ls.pos >= iv.from && ls.pos < iv.to {
				add(iv.class, ls.class, ls.pos, "")
			}
		}
		// Calls whose callees (transitively) acquire locks. Detached go and
		// defer calls run outside the held region.
		for _, site := range node.Calls {
			if site.ViaGo || site.Pos < iv.from || site.Pos >= iv.to {
				continue
			}
			for _, callee := range site.Callees {
				cf := prog.factsOf(callee)
				if cf == nil {
					continue
				}
				for _, class := range sortedLockClasses(cf.locks) {
					add(iv.class, class, site.Pos, prog.lockChain(callee, class))
				}
			}
		}
	}
}

// classRegionAfterLock mirrors lockheld's regionAfterLock but matches the
// releasing Unlock by lock class instead of rendered receiver text.
func classRegionAfterLock(prog *Program, pkg *Package, rest []ast.Stmt, body *ast.BlockStmt, class string) (from, to token.Pos) {
	if len(rest) == 0 {
		return body.End(), body.End()
	}
	from = rest[0].Pos()
	for _, stmt := range rest {
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if c, ok := prog.lockClassOfCall(pkg, d.Call, "Unlock", "RUnlock"); ok && c == class {
				return from, body.End()
			}
		}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if c, ok := prog.lockClassOfCall(pkg, call, "Unlock", "RUnlock"); ok && c == class {
					return from, stmt.Pos()
				}
			}
		}
	}
	return from, rest[len(rest)-1].End()
}

// lockCycle is one reported cycle: the class sequence plus the edges that
// close it, with a deterministic owner (package, position) choosing which
// pass reports it.
type lockCycle struct {
	classes  []string
	edges    []*lockEdge
	ownerPkg string
	ownerPos token.Pos
	rendered string
}

// lockCycles finds every elementary ordering cycle, computed once per
// program and cached.
func (prog *Program) lockCyclesFor(a *Analyzer) []*lockCycle {
	adj := make(map[string]map[string]*lockEdge) // from -> to -> first edge
	var classes []string
	seen := make(map[string]bool)
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	for _, e := range prog.lockEdges {
		note(e.from)
		note(e.to)
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]*lockEdge)
		}
		if adj[e.from][e.to] == nil {
			adj[e.from][e.to] = e
		}
	}
	sort.Strings(classes)

	// Strongly connected components (iterative Tarjan); any SCC with more
	// than one class contains at least one ordering cycle.
	sccs := stronglyConnected(classes, adj)

	var cycles []*lockCycle
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		cyc := cycleWithin(scc, adj)
		if cyc == nil {
			continue
		}
		cycles = append(cycles, prog.finishCycle(a, cyc, adj))
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].rendered < cycles[j].rendered })
	return cycles
}

// cycleWithin returns an elementary cycle inside the SCC as its class
// sequence, deterministically: a DFS from the smallest class following
// sorted edges restricted to the SCC.
func cycleWithin(scc []string, adj map[string]map[string]*lockEdge) []string {
	inSCC := make(map[string]bool, len(scc))
	for _, c := range scc {
		inSCC[c] = true
	}
	sorted := append([]string(nil), scc...)
	sort.Strings(sorted)
	start := sorted[0]
	var path []string
	onPath := make(map[string]bool)
	var dfs func(c string) []string
	dfs = func(c string) []string {
		path = append(path, c)
		onPath[c] = true
		var nexts []string
		for to := range adj[c] {
			if inSCC[to] {
				nexts = append(nexts, to)
			}
		}
		sort.Strings(nexts)
		for _, to := range nexts {
			if to == start && len(path) > 1 {
				return append([]string(nil), path...)
			}
			if !onPath[to] {
				if cyc := dfs(to); cyc != nil {
					return cyc
				}
			}
		}
		path = path[:len(path)-1]
		onPath[c] = false
		return nil
	}
	return dfs(start)
}

func (prog *Program) finishCycle(a *Analyzer, classSeq []string, adj map[string]map[string]*lockEdge) *lockCycle {
	cyc := &lockCycle{classes: classSeq}
	var parts []string
	for i, c := range classSeq {
		next := classSeq[(i+1)%len(classSeq)]
		e := adj[c][next]
		cyc.edges = append(cyc.edges, e)
		where := prog.Fset.Position(e.pos).String()
		if e.viaChain != "" {
			parts = append(parts, fmt.Sprintf("%s → %s (at %s via %s)", c, next, where, e.viaChain))
		} else {
			parts = append(parts, fmt.Sprintf("%s → %s (at %s)", c, next, where))
		}
	}
	cyc.rendered = strings.Join(parts, "; ")
	// Owner: the first edge (in the deterministic global edge order) whose
	// package has a lockorder pass; the cycle is reported exactly once,
	// there. Fallback: the first edge's package.
	for _, e := range prog.lockEdges {
		if !edgeInCycle(e, cyc) {
			continue
		}
		if a.AppliesTo(e.pkgPath) {
			cyc.ownerPkg, cyc.ownerPos = e.pkgPath, e.pos
			return cyc
		}
		if cyc.ownerPkg == "" {
			cyc.ownerPkg, cyc.ownerPos = e.pkgPath, e.pos
		}
	}
	return cyc
}

func edgeInCycle(e *lockEdge, cyc *lockCycle) bool {
	for _, ce := range cyc.edges {
		if e.from == ce.from && e.to == ce.to {
			return true
		}
	}
	return false
}

func runLockOrder(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, cyc := range prog.lockCyclesFor(pass.Analyzer) {
		if cyc.ownerPkg != pass.PkgPath {
			continue
		}
		pass.Reportf(cyc.ownerPos, "lock acquisition order cycle: %s — two paths can take these locks in opposite order and deadlock; fix the order, or annotate a reviewed edge with //nyx:lockorder", cyc.rendered)
	}
	return nil
}

// stronglyConnected returns the SCCs of the class graph (iterative Tarjan,
// deterministic over the sorted class and edge order).
func stronglyConnected(classes []string, adj map[string]map[string]*lockEdge) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	sortedAdj := func(c string) []string {
		var out []string
		for to := range adj[c] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}

	type frame struct {
		node  string
		succs []string
		i     int
	}
	for _, root := range classes {
		if _, ok := index[root]; ok {
			continue
		}
		var frames []frame
		push := func(c string) {
			index[c] = next
			low[c] = next
			next++
			stack = append(stack, c)
			onStack[c] = true
			frames = append(frames, frame{node: c, succs: sortedAdj(c)})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				succ := f.succs[f.i]
				f.i++
				if _, ok := index[succ]; !ok {
					push(succ)
				} else if onStack[succ] {
					if index[succ] < low[f.node] {
						low[f.node] = index[succ]
					}
				}
				continue
			}
			// Pop.
			c := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[c] < low[parent.node] {
					low[parent.node] = low[c]
				}
			}
			if low[c] == index[c] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == c {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
