package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc forbids heap allocations in functions marked //nyx:hotpath.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `forbid heap allocations in //nyx:hotpath functions

The snapshot-restore and repeat-lookup paths run once per execution — tens
of thousands of times per virtual second — so a single allocation there
shows up directly in ns_per_restore. Functions whose doc comment carries
//nyx:hotpath must not allocate: no escaping composite literals, slice or
map literals, make/new, fmt or errors.New calls, allocating string
conversions, interface boxing of struct values, zero-capacity reslice
appends, or growth of an un-presized local slice. Calls into functions
that (transitively) allocate are flagged with the full call chain. A
reviewed cold path (e.g. an error return) carries //nyx:alloc <why>, which
also stops the allocation fact from tainting callers.`,
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, node := range prog.nodes {
		if node.Pkg.PkgPath != pass.PkgPath || !prog.hotpathMarked(node) {
			continue
		}
		checkHotFunc(pass, node)
	}
	return nil
}

// hotpathMarked reports whether the function's doc comment (or its
// declaration line) carries //nyx:hotpath.
func (prog *Program) hotpathMarked(node *FuncNode) bool {
	idx := prog.pkgDirectives(node.Pkg.PkgPath)
	return idx != nil && idx.allowed(node.Pkg.Fset, node.Decl.Name.Pos(), "hotpath")
}

// checkHotFunc flags direct allocation sites in a hotpath function and call
// sites whose callees transitively allocate. Function literals are skipped:
// closures on the hot path are a separate concern (and deferred closures in
// this codebase are open-coded by the compiler, not allocated).
func checkHotFunc(pass *Pass, node *FuncNode) {
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		for _, site := range allocSitesOf(node.Pkg, n) {
			if !pass.Prog.allowedAt(node.Pkg, site.pos, "alloc") {
				pass.Reportf(site.pos, "%s in //nyx:hotpath function %s: hoist it off the hot path, pre-size a scratch buffer, or annotate a reviewed cold path with //nyx:alloc", site.desc, node.Fn.Name())
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkLocalAppendGrowth(pass, node, call)
		}
		return true
	})

	// Transitive: calls into functions that allocate somewhere downstream.
	prog := pass.Prog
	for _, site := range node.Calls {
		if site.ViaGo {
			continue
		}
		for _, callee := range site.Callees {
			cn := prog.node(callee)
			if cn != nil && prog.hotpathMarked(cn) {
				// The callee is itself hotpath-gated: its allocations are
				// reported (or reviewed) at their own sites.
				continue
			}
			ff := prog.factsOf(callee)
			if ff == nil || !ff.has[factAllocates] {
				continue
			}
			if !pass.Allowed(site.Call, "alloc") {
				pass.Reportf(site.Pos, "call from //nyx:hotpath function %s allocates: %s (//nyx:alloc to accept a reviewed cold path)", node.Fn.Name(), prog.chain(callee, factAllocates))
			}
			break // one report per site is enough, even with several CHA targets
		}
	}
}

// allowedAt checks a //nyx: directive by position using the program-wide
// directive index (usable outside the reporting package's own pass).
func (prog *Program) allowedAt(pkg *Package, pos token.Pos, name string) bool {
	idx := prog.pkgDirectives(pkg.PkgPath)
	return idx != nil && idx.allowed(pkg.Fset, pos, name)
}

// checkLocalAppendGrowth flags append growth of a slice that the function
// declared empty (var s []T, s := []T{}, or s := T(nil)): every append to
// it must grow the backing array. Appends rooted at parameters, struct
// fields, or package state are exempt — those are the caller-presized and
// scratch-reuse patterns the hot path is built on.
func checkLocalAppendGrowth(pass *Pass, node *FuncNode, call *ast.CallExpr) {
	info := node.Pkg.TypesInfo
	if !isBuiltinAppendInfo(info, call) || len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if _, zeroCap := zeroCapReslice(arg); zeroCap {
		return // already reported as a direct alloc site
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	// Local to this function, and declared without capacity?
	if obj.Pos() < node.Decl.Pos() || obj.Pos() >= node.Decl.End() {
		return
	}
	if isParam(node, obj) || !declaredEmpty(node, info, obj) {
		return
	}
	if !pass.Prog.allowedAt(node.Pkg, call.Pos(), "alloc") {
		pass.Reportf(call.Pos(), "append grows un-presized local slice %q in //nyx:hotpath function %s: pre-size it or reuse a scratch buffer (//nyx:alloc to suppress)", obj.Name(), node.Fn.Name())
	}
}

func isParam(node *FuncNode, obj *types.Var) bool {
	sig := node.Fn.Signature()
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	if recv := sig.Recv(); recv == obj {
		return true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == obj {
			return true
		}
	}
	return false
}

// declaredEmpty reports whether obj's declaration inside the function is a
// nil or empty slice (var s []T; s := []T{}; s, _ := f() is NOT empty).
func declaredEmpty(node *FuncNode, info *types.Info, obj *types.Var) bool {
	empty := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			for i, name := range d.Names {
				if info.Defs[name] != obj {
					continue
				}
				if len(d.Values) == 0 {
					empty = true // var s []T
				} else if i < len(d.Values) {
					empty = emptySliceExpr(d.Values[i])
				}
			}
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.Defs[id] != obj {
					continue
				}
				if i < len(d.Rhs) && len(d.Rhs) == len(d.Lhs) {
					empty = emptySliceExpr(d.Rhs[i])
				}
			}
		}
		return true
	})
	return empty
}

// emptySliceExpr matches []T{} and nil.
func emptySliceExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.Ident:
		return x.Name == "nil"
	}
	return false
}

// allocSite is one syntactic heap allocation.
type allocSite struct {
	pos  token.Pos
	desc string
}

// allocSitesOf classifies a single AST node as zero or more allocation
// sites. It is shared by the hotalloc direct check and the fact engine's
// allocates seed.
func allocSitesOf(pkg *Package, n ast.Node) []allocSite {
	info := pkg.TypesInfo
	switch m := n.(type) {
	case *ast.UnaryExpr:
		if m.Op == token.AND {
			if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
				return []allocSite{{m.Pos(), "escaping composite literal (&T{...})"}}
			}
		}
	case *ast.CompositeLit:
		t := info.Types[m].Type
		if t == nil {
			return nil
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			return []allocSite{{m.Pos(), "slice literal"}}
		case *types.Map:
			return []allocSite{{m.Pos(), "map literal"}}
		}
	case *ast.CallExpr:
		return callAllocSites(pkg, m)
	}
	return nil
}

func callAllocSites(pkg *Package, call *ast.CallExpr) []allocSite {
	info := pkg.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return []allocSite{{call.Pos(), "make"}}
			case "new":
				return []allocSite{{call.Pos(), "new"}}
			case "append":
				if len(call.Args) > 0 {
					if pos, ok := zeroCapReslice(ast.Unparen(call.Args[0])); ok {
						return []allocSite{{pos, "append to a zero-capacity reslice x[:0:0] (forces reallocation every call)"}}
					}
				}
			}
			return nil
		}
	}
	// Allocating conversion: string <-> []byte/[]rune copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if desc, ok := allocConversion(info, tv.Type, call.Args[0]); ok {
			return []allocSite{{call.Pos(), desc}}
		}
		return nil
	}
	fn := calleeFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return []allocSite{{call.Pos(), "fmt." + fn.Name() + " (allocates)"}}
	case "errors":
		if fn.Name() == "New" {
			return []allocSite{{call.Pos(), "errors.New (allocates)"}}
		}
	}
	return boxingSites(info, fn, call)
}

func allocConversion(info *types.Info, to types.Type, arg ast.Expr) (string, bool) {
	from := info.Types[arg].Type
	if from == nil {
		return "", false
	}
	if isString(to) && isByteOrRuneSlice(from) {
		return "string([]byte) conversion (copies)", true
	}
	if isByteOrRuneSlice(to) && isString(from) {
		return "[]byte(string) conversion (copies)", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxingSites flags struct or array values passed where the callee takes an
// interface: the value is boxed, which allocates. Pointers, basics, and
// values that are already interface-typed do not box. The variadic
// parameter is skipped (fmt-style calls are flagged wholesale above).
func boxingSites(info *types.Info, fn *types.Func, call *ast.CallExpr) []allocSite {
	sig := fn.Signature()
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
	}
	var sites []allocSite
	for i := 0; i < n && i < len(call.Args); i++ {
		pt := params.At(i).Type()
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[call.Args[i]].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Struct, *types.Array:
			sites = append(sites, allocSite{call.Args[i].Pos(),
				fmt.Sprintf("interface boxing of %s value", at.String())})
		}
	}
	return sites
}

// zeroCapReslice matches x[:0:0] (and x[0:0:0]): a reslice whose capacity
// is forced to zero, so any later append must reallocate.
func zeroCapReslice(e ast.Expr) (token.Pos, bool) {
	s, ok := e.(*ast.SliceExpr)
	if !ok || !s.Slice3 || s.Max == nil {
		return token.NoPos, false
	}
	if lit, ok := ast.Unparen(s.Max).(*ast.BasicLit); ok && lit.Value == "0" {
		return s.Pos(), true
	}
	return token.NoPos, false
}

func isBuiltinAppendInfo(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// scanAllocFacts seeds the allocates fact from one AST node during the
// direct-fact walk. //nyx:alloc at the site means the allocation was
// reviewed where it happens, so callers are not tainted.
func (prog *Program) scanAllocFacts(node *FuncNode, ff *funcFacts, n ast.Node,
	allowed func(token.Pos, string) bool, set func(factKind, token.Pos, string)) {
	for _, site := range allocSitesOf(node.Pkg, n) {
		if !allowed(site.pos, "alloc") {
			set(factAllocates, site.pos, site.desc)
		}
	}
}
