package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader discovers packages with `go list -deps -json` and type-checks them
// with go/types, entirely offline: no module proxy, no export data, no
// x/tools. Dependencies are checked with IgnoreFuncBodies (only their
// exported API matters); target packages keep full bodies and a populated
// types.Info. Test files are not analyzed — the enforced invariants concern
// production code, and tests legitimately use wall clocks and global rand.
type Loader struct {
	// Dir is where the go command runs; it must be inside the module when
	// loading module packages. Stdlib paths resolve from anywhere.
	Dir  string
	Fset *token.FileSet

	// LoadTime accumulates the wall time spent in Load (go list plus
	// type-checking); nyx-vet reports it in -json output.
	LoadTime time.Duration

	meta    map[string]*listPkg
	resolve map[string]string // source import path -> vendored/actual path
	checked map[string]*types.Package
	// targets are packages that get a full type-check (bodies + Info); each
	// is built exactly once so every importer sees one types.Package
	// identity per path.
	targets map[string]*listPkg
	built   map[string]*Package
}

type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	// DepOnly is set by `go list -deps` on packages that are only in the
	// output as dependencies of the named patterns — it is what lets one
	// -deps invocation serve as both the target list and the dependency
	// universe.
	DepOnly bool
}

// NewLoader returns a Loader running the go command in dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		meta:    make(map[string]*listPkg),
		resolve: make(map[string]string),
		checked: make(map[string]*types.Package),
		targets: make(map[string]*listPkg),
		built:   make(map[string]*Package),
	}
}

// Load type-checks the packages matched by the go list patterns and returns
// them ready for analysis, in dependency order. One `go list -deps` call
// provides both the target set (entries without DepOnly) and the dependency
// metadata; LoadTime accumulates the wall time spent here.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	start := time.Now()
	defer func() { l.LoadTime += time.Since(start) }()
	listed, err := l.list(true, patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, p := range listed {
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	for _, t := range targets {
		if len(t.GoFiles) > 0 {
			l.targets[t.ImportPath] = t
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := l.ensureTarget(t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ensureTarget fully type-checks a target package once, memoized.
func (l *Loader) ensureTarget(m *listPkg) (*Package, error) {
	if pkg, ok := l.built[m.ImportPath]; ok {
		return pkg, nil
	}
	pkg, err := l.checkTarget(m)
	if err != nil {
		return nil, err
	}
	l.built[m.ImportPath] = pkg
	return pkg, nil
}

// list runs go list over the patterns (with -deps when deps is true),
// merging the metadata into the loader and returning the listed packages.
func (l *Loader) list(deps bool, patterns ...string) ([]*listPkg, error) {
	args := []string{"list"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// Pure-Go stdlib variants only: cgo files cannot be type-checked from
	// source without running the C preprocessor.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		listed = append(listed, p)
		if _, ok := l.meta[p.ImportPath]; !ok {
			l.meta[p.ImportPath] = p
		}
		for from, to := range p.ImportMap {
			l.resolve[from] = to
		}
	}
	return listed, nil
}

// Import implements types.Importer over the loader's package universe;
// dependencies are type-checked on first use, API only.
func (l *Loader) Import(path string) (*types.Package, error) {
	if r, ok := l.resolve[path]; ok {
		path = r
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	// A target imported by another target gets its one full check now, so
	// both see the same types.Package identity.
	if m, ok := l.targets[path]; ok {
		pkg, err := l.ensureTarget(m)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	m, ok := l.meta[path]
	if !ok {
		// Metadata not seen yet (e.g. a fixture importing a stdlib package
		// outside the module's dependency closure): fetch it on demand.
		if _, err := l.list(true, path); err != nil {
			return nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("package %s not found by go list", path)
		}
	}
	files, err := l.parse(m, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // dependency errors surface via the nil-package check below
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil && (pkg == nil || !pkg.Complete()) {
		return nil, fmt.Errorf("type-checking dependency %s: %v", path, err)
	}
	l.checked[path] = pkg
	return pkg, nil
}

// checkTarget fully type-checks one target package with a populated
// types.Info.
func (l *Loader) checkTarget(m *listPkg) (*Package, error) {
	files, err := l.parse(m, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return l.CheckFiles(m.ImportPath, m.Dir, files)
}

// CheckFiles type-checks already-parsed files as package pkgPath, resolving
// imports through the loader. It is the entry point used both for target
// packages and for analysistest fixtures.
func (l *Loader) CheckFiles(pkgPath, dir string, files []*ast.File) (*Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, firstErr)
	}
	l.checked[pkgPath] = tpkg
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (l *Loader) parse(m *listPkg, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// ---- process-wide load cache ----

type fileStamp struct {
	modTime time.Time
	size    int64
}

type loadCacheEntry struct {
	pkgs     []*Package
	loader   *Loader
	loadTime time.Duration
	stamps   map[string]fileStamp
}

var loadCache = struct {
	sync.Mutex
	entries map[string]*loadCacheEntry
}{entries: make(map[string]*loadCacheEntry)}

// LoadShared is Load behind a process-wide cache keyed by (dir, patterns)
// and validated against the mtime+size of every target source file: repeat
// analyzer runs in one process (nyx-vet over several pattern sets, the
// analysistest suite plus TestRepoIsClean) pay the go list + type-check
// cost once. A stale or missing file invalidates the entry and reloads.
func LoadShared(dir string, patterns ...string) ([]*Package, *Loader, time.Duration, bool, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00")

	loadCache.Lock()
	defer loadCache.Unlock()
	if e, ok := loadCache.entries[key]; ok && stampsFresh(e.stamps) {
		return e.pkgs, e.loader, e.loadTime, true, nil
	}

	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, nil, 0, false, err
	}
	e := &loadCacheEntry{pkgs: pkgs, loader: loader, loadTime: loader.LoadTime, stamps: stampPackages(pkgs)}
	loadCache.entries[key] = e
	return pkgs, loader, e.loadTime, false, nil
}

func stampPackages(pkgs []*Package) map[string]fileStamp {
	stamps := make(map[string]fileStamp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if info, err := os.Stat(name); err == nil {
				stamps[name] = fileStamp{modTime: info.ModTime(), size: info.Size()}
			}
		}
	}
	return stamps
}

func stampsFresh(stamps map[string]fileStamp) bool {
	for name, s := range stamps {
		info, err := os.Stat(name)
		if err != nil || !info.ModTime().Equal(s.modTime) || info.Size() != s.size {
			return false
		}
	}
	return true
}
