// Package analysistest runs nyx-vet analyzers against golden fixture
// packages under testdata/src, mirroring the x/tools package of the same
// name: fixture files mark each expected diagnostic with a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment on the offending line. The test fails on any unmatched
// expectation and on any unexpected diagnostic, so every fixture is both a
// positive test (the analyzer fires where it must) and a negative one (it
// stays silent everywhere else).
//
// Fixtures may import other fixture packages: list their paths as deps and
// they are loaded (with full bodies, so transitive facts flow through them)
// before the main package and analyzed alongside it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// One loader is shared by every fixture run in the process: stdlib
// dependency metadata, type-checked packages, and fixture packages are
// cached across fixtures, keeping the whole suite at one `go list`
// round-trip per distinct import.
var (
	loaderMu sync.Mutex
	loader   *analysis.Loader
	fixtures = make(map[string]*analysis.Package) // fixture pkgPath -> loaded package
)

// Run analyzes the fixture package testdata/src/<pkgPath> with a and
// compares diagnostics against the fixture's want comments (collected from
// the main package and every dep). The fixture's import path is pkgPath
// itself, so analyzer package gating (e.g. nodeterm only applying to
// virtual-time packages) is exercised by the full path. Dep fixtures are
// loaded first so the main package's imports resolve against them.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string, deps ...string) {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	diags, wants := run(t, testdata, a, pkgPath, deps)

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !claimWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// Diagnostics runs a over the fixture (plus deps) and returns the raw
// diagnostic messages, without comparing want comments. The mutation tests
// use it to show that a finding present under full fact propagation
// disappears when propagation is disabled.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string, deps ...string) []string {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	diags, _ := run(t, testdata, a, pkgPath, deps)
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

// run loads deps then the main fixture, analyzes them together, and returns
// the diagnostics plus the want expectations of every involved package.
// Callers hold loaderMu.
func run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string, deps []string) ([]analysis.Diagnostic, map[string][]*want) {
	t.Helper()
	var pkgs []*analysis.Package
	wants := make(map[string][]*want)
	for _, p := range append(append([]string(nil), deps...), pkgPath) {
		pkg := loadFixture(t, testdata, p)
		pkgs = append(pkgs, pkg)
		collectPkgWants(t, filepath.Join(testdata, "src", filepath.FromSlash(p)), wants)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags, wants
}

// loadFixture parses and type-checks one fixture package, memoized by its
// import path. Callers hold loaderMu.
func loadFixture(t *testing.T, testdata, pkgPath string) *analysis.Package {
	t.Helper()
	if pkg, ok := fixtures[pkgPath]; ok {
		return pkg
	}
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	if loader == nil {
		loader = analysis.NewLoader(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(loader.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkg, err := loader.CheckFiles(pkgPath, dir, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}
	fixtures[pkgPath] = pkg
	return pkg
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func claimWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectPkgWants scans every fixture file in dir for want comments.
func collectPkgWants(t *testing.T, dir string, wants map[string][]*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		collectWants(t, filepath.Join(dir, e.Name()), wants)
	}
}

// collectWants scans a fixture file's source for `// want "re"...` comments.
func collectWants(t *testing.T, path string, wants map[string][]*want) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(line[idx+len("// want "):])
		key := fmt.Sprintf("%s:%d", path, i+1)
		for rest != "" {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s: malformed want comment %q: %v", key, rest, err)
			}
			pat, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: unquoting %q: %v", key, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
			}
			wants[key] = append(wants[key], &want{re: re})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
}
