// Package analysistest runs nyx-vet analyzers against golden fixture
// packages under testdata/src, mirroring the x/tools package of the same
// name: fixture files mark each expected diagnostic with a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment on the offending line. The test fails on any unmatched
// expectation and on any unexpected diagnostic, so every fixture is both a
// positive test (the analyzer fires where it must) and a negative one (it
// stays silent everywhere else).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// One loader is shared by every fixture run in the process: stdlib
// dependency metadata and type-checked packages are cached across fixtures,
// keeping the whole suite at one `go list` round-trip per distinct import.
var (
	loaderMu sync.Mutex
	loader   *analysis.Loader
)

// Run analyzes the fixture package testdata/src/<pkgPath> with a and
// compares diagnostics against the fixture's want comments. The fixture's
// import path is pkgPath itself, so analyzer package gating (e.g. nodeterm
// only applying to virtual-time packages) is exercised by the path's last
// element.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()

	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	if loader == nil {
		loader = analysis.NewLoader(dir)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(loader.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
		collectWants(t, path, wants)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	pkg, err := loader.CheckFiles(pkgPath, dir, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !claimWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func claimWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans a fixture file's source for `// want "re"...` comments.
func collectWants(t *testing.T, path string, wants map[string][]*want) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(line[idx+len("// want "):])
		key := fmt.Sprintf("%s:%d", path, i+1)
		for rest != "" {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s: malformed want comment %q: %v", key, rest, err)
			}
			pat, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: unquoting %q: %v", key, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
			}
			wants[key] = append(wants[key], &want{re: re})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
}
