package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld flags blocking operations reachable while a broker/service/pool
// mutex is held.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: `forbid blocking operations while a mutex is held

The campaign broker, the service manager, and the snapshot pool all sit on
hot paths shared by every worker goroutine: a channel operation, WaitGroup
wait, sleep, or network/store round-trip made while one of their mutexes is
held stalls the whole fleet (and can deadlock against the actor loops that
service those channels). The analysis tracks sync.Mutex/RWMutex
Lock..Unlock regions (including the Lock-then-defer-Unlock idiom, which
holds the lock to the end of the function) and flags blocking statements
inside them — both direct ones and calls whose callees may transitively
block, reported with the full call chain. Calls launched with go or defer
inside the region run outside it and are not flagged. Reviewed exceptions
carry //nyx:blocking.`,
	PkgPaths: []string{
		"repro/internal/campaign",
		"repro/internal/service",
		"repro/internal/snappool",
	},
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) error {
	sites := passCallSites(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockRegions(pass, body, sites)
			}
			return true
		})
	}
	return nil
}

// passCallSites indexes the package's resolved call sites by position so
// the region walk can consult transitive may-block facts (and skip calls
// detached by go/defer).
func passCallSites(pass *Pass) map[token.Pos]*CallSite {
	sites := make(map[token.Pos]*CallSite)
	if pass.Prog == nil {
		return sites
	}
	for _, node := range pass.Prog.nodes {
		if node.Pkg.PkgPath != pass.PkgPath {
			continue
		}
		for _, site := range node.Calls {
			sites[site.Pos] = site
		}
	}
	return sites
}

// checkLockRegions scans one function body (not descending into nested
// function literals, which run on their own goroutine or later) for held-
// mutex regions and flags blocking statements inside them.
func checkLockRegions(pass *Pass, body *ast.BlockStmt, sites map[token.Pos]*CallSite) {
	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if recv, ok := mutexCall(pass, stmt, "Lock", "RLock"); ok {
				from, to := regionAfterLock(pass, stmts[i+1:], body, recv)
				flagBlockingBetween(pass, body, from, to, recv, sites)
				continue
			}
			// Recurse into nested blocks so locks taken inside an if/for
			// body are still tracked.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				walkBlock(s.List)
			case *ast.IfStmt:
				walkBlock(s.Body.List)
				if alt, ok := s.Else.(*ast.BlockStmt); ok {
					walkBlock(alt.List)
				}
			case *ast.ForStmt:
				walkBlock(s.Body.List)
			case *ast.RangeStmt:
				walkBlock(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
			}
		}
	}
	walkBlock(body.List)
}

// regionAfterLock determines the held region following a Lock on recv:
// if the lock is released by a defer, the region runs to the end of the
// function; otherwise it runs until the matching Unlock statement (or the
// end of the surrounding statement list if none is found).
func regionAfterLock(pass *Pass, rest []ast.Stmt, body *ast.BlockStmt, recv string) (from, to token.Pos) {
	if len(rest) == 0 {
		return body.End(), body.End()
	}
	from = rest[0].Pos()
	for _, stmt := range rest {
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if r, ok := mutexCallExpr(pass, d.Call, "Unlock", "RUnlock"); ok && r == recv {
				return from, body.End()
			}
		}
		if r, ok := mutexCall(pass, stmt, "Unlock", "RUnlock"); ok && r == recv {
			return from, stmt.Pos()
		}
	}
	return from, rest[len(rest)-1].End()
}

// mutexCall matches an expression statement calling a sync mutex method in
// names and returns the rendered receiver expression (e.g. "b.mu").
func mutexCall(pass *Pass, stmt ast.Stmt, names ...string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return mutexCallExpr(pass, call, names...)
}

func mutexCallExpr(pass *Pass, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	for _, name := range names {
		if fn.Name() == name {
			return renderExpr(pass.Fset, sel.X), true
		}
	}
	return "", false
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

// flagBlockingBetween reports blocking operations positioned in [from, to)
// inside the function body, skipping nested function literals. Channel
// operations that are a select's comm clauses are not reported separately:
// the select statement itself is the (single) blocking point.
func flagBlockingBetween(pass *Pass, body *ast.BlockStmt, from, to token.Pos, recv string, sites map[token.Pos]*CallSite) {
	var comms []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms = append(comms, cc.Comm)
				}
			}
		}
		return true
	})
	inComm := func(n ast.Node) bool {
		for _, c := range comms {
			if n.Pos() >= c.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n.Pos() < from || n.Pos() >= to {
			// Children may still overlap the region.
			return n.End() > from
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inComm(n) {
				report(pass, n, recv, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm(n) {
				report(pass, n, recv, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(pass, n, recv, "blocking select")
			}
		case *ast.CallExpr:
			if name, ok := blockingCall(pass, n); ok {
				report(pass, n, recv, name)
				return true
			}
			// Transitive: the callee (or something it reaches) may block.
			// Calls detached by go/defer run outside the held region.
			site := sites[n.Pos()]
			if site == nil || site.ViaGo || site.Call != n {
				return true
			}
			for _, callee := range site.Callees {
				ff := pass.Prog.factsOf(callee)
				if ff == nil || !ff.has[factMayBlock] {
					continue
				}
				report(pass, n, recv, "call that may block: "+pass.Prog.chain(callee, factMayBlock))
				break // one report per site, even with several CHA targets
			}
		}
		return true
	})
}

func report(pass *Pass, n ast.Node, recv, what string) {
	if pass.Allowed(n, "blocking") {
		return
	}
	pass.Reportf(n.Pos(), "%s while %s is held: release the lock first, or annotate a reviewed site with //nyx:blocking", what, recv)
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall recognizes calls that can block on other goroutines or on
// I/O: WaitGroup/Cond waits, sleeps, and network or checkpoint-store
// round-trips.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "sync" && fn.Name() == "Wait":
		return "sync." + recvTypeName(fn) + ".Wait", true
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "net" || pkg == "net/http":
		return pkg + "." + fn.Name() + " I/O", true
	case strings.HasSuffix(pkg, "internal/store"):
		return "store I/O (" + fn.Name() + ")", true
	}
	return "", false
}

func recvTypeName(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
