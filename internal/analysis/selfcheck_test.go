package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean is the self-check the CI gate depends on: the full
// analyzer suite over the whole repository must report nothing. Every
// deliberate exception is annotated at its site with a //nyx: directive, so
// any new diagnostic is either a real invariant violation or a new
// exception that needs review and an annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, loader, _, _, err := analysis.LoadShared("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
