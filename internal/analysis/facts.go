package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A fact is one boolean summary about a function, computed directly from
// its body and then propagated transitively through the call graph to a
// fixed point.
type factKind int

const (
	factWallclock factKind = iota // calls time.Now/Since/Until
	factRand                      // consults the global math/rand generator
	factMayBlock                  // may block: channel op, select, Wait, sleep, net/store I/O
	factAllocates                 // performs a heap allocation
	numFactKinds
)

func (k factKind) String() string {
	switch k {
	case factWallclock:
		return "reads-wallclock"
	case factRand:
		return "uses-global-rand"
	case factMayBlock:
		return "may-block"
	case factAllocates:
		return "allocates"
	}
	return "unknown-fact"
}

// witness records why a fact holds for a function: either a direct source
// site in its own body (Callee == nil) or a call to a function that already
// had the fact (Callee != nil). Chains reconstructed by following witnesses
// are minimal in call-graph hops because propagation is round-staged.
type witness struct {
	Pos    token.Pos
	Desc   string      // direct witnesses: what the site is, e.g. "time.Now"
	Callee *types.Func // transitive witnesses: the callee the fact came from
}

// funcFacts is the per-function summary.
type funcFacts struct {
	has [numFactKinds]bool
	wit [numFactKinds]witness
	// locks is the set of lock classes the function may acquire, directly
	// or transitively; each class maps to the witness that introduced it.
	locks map[string]witness
}

// maxPropagationRounds bounds fixed-point iteration; negative means
// "until convergence". Tests lower it to prove that breaking propagation
// breaks the transitive fixtures (a mutation check on the engine itself).
var maxPropagationRounds = -1

// SetMaxPropagationRoundsForTest overrides the fixed-point round bound and
// returns a restore func. Round bound 0 disables transitive propagation
// entirely, degrading every analyzer to its intraprocedural version.
func SetMaxPropagationRoundsForTest(n int) (restore func()) {
	old := maxPropagationRounds
	maxPropagationRounds = n
	return func() { maxPropagationRounds = old }
}

// facts returns the summary for fn, or nil when fn has no node (stdlib or
// API-only dependency: no body, no facts).
func (prog *Program) factsOf(fn *types.Func) *funcFacts {
	if fn == nil {
		return nil
	}
	return prog.facts[fn]
}

// computeFacts seeds direct facts from every node's body, then propagates
// them through call sites round by round (Jacobi style: each round only
// reads the previous round's state) until nothing changes. Round staging
// plus deterministic node/call ordering makes both the fixed point and the
// recorded witnesses independent of map iteration order, and yields
// shortest witness chains.
func (prog *Program) computeFacts() {
	prog.facts = make(map[*types.Func]*funcFacts, len(prog.nodes))
	for _, node := range prog.nodes {
		prog.facts[node.Fn] = prog.directFacts(node)
	}
	round := 0
	for {
		if maxPropagationRounds >= 0 && round >= maxPropagationRounds {
			return
		}
		round++
		type update struct {
			ff    *funcFacts
			kind  factKind
			class string // lock class updates only
			wit   witness
		}
		var updates []update
		// seen dedupes updates within the round without mutating the state
		// the scan reads: the scan must only observe the previous round's
		// fixed state, or chains lose their shortest-path property and
		// half-committed witnesses could be read back.
		type updKey struct {
			ff    *funcFacts
			kind  factKind
			class string
		}
		seen := make(map[updKey]bool)
		for _, node := range prog.nodes {
			ff := prog.facts[node.Fn]
			for _, site := range node.Calls {
				for _, callee := range site.Callees {
					cf := prog.factsOf(callee)
					if cf == nil || cf == ff {
						continue
					}
					for k := factKind(0); k < numFactKinds; k++ {
						if !cf.has[k] || ff.has[k] || seen[updKey{ff, k, ""}] {
							continue
						}
						// Detached execution: the spawner still inherits
						// nondeterminism (the output diverges regardless of
						// which goroutine reads the clock), but not blocking,
						// allocation, or lock acquisition.
						if site.ViaGo && (k == factMayBlock || k == factAllocates) {
							continue
						}
						seen[updKey{ff, k, ""}] = true
						updates = append(updates, update{ff: ff, kind: k,
							wit: witness{Pos: site.Pos, Callee: callee}})
					}
					if !site.ViaGo {
						for _, class := range sortedLockClasses(cf.locks) {
							if _, ok := ff.locks[class]; ok || seen[updKey{ff, 0, class}] {
								continue
							}
							seen[updKey{ff, 0, class}] = true
							updates = append(updates, update{ff: ff, class: class,
								wit: witness{Pos: site.Pos, Callee: callee}})
						}
					}
				}
			}
		}
		if len(updates) == 0 {
			return
		}
		for _, u := range updates {
			if u.class != "" {
				u.ff.locks[u.class] = u.wit
			} else {
				u.ff.has[u.kind] = true
				u.ff.wit[u.kind] = u.wit
			}
		}
	}
}

func sortedLockClasses(m map[string]witness) []string {
	classes := make([]string, 0, len(m))
	for c := range m {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return classes
}

// directFacts scans one function body for fact sources. A //nyx: directive
// at the source site (wallclock, rand, blocking, alloc) suppresses the fact
// itself: the site was reviewed where it happens, so callers are not
// tainted by it.
func (prog *Program) directFacts(node *FuncNode) *funcFacts {
	ff := &funcFacts{locks: make(map[string]witness)}
	pkg := node.Pkg
	idx := prog.pkgDirectives(pkg.PkgPath)
	allowed := func(pos token.Pos, name string) bool {
		return idx != nil && idx.allowed(pkg.Fset, pos, name)
	}
	set := func(k factKind, pos token.Pos, desc string) {
		if !ff.has[k] {
			ff.has[k] = true
			ff.wit[k] = witness{Pos: pos, Desc: desc}
		}
	}

	var walk func(n ast.Node, viaGo bool)
	walk = func(n ast.Node, viaGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				walkDetachedCall(m.Call, viaGo, walk)
				prog.scanCallFacts(node, ff, m.Call, true, allowed, set)
				return false
			case *ast.DeferStmt:
				walkDetachedCall(m.Call, viaGo, walk)
				prog.scanCallFacts(node, ff, m.Call, true, allowed, set)
				return false
			case *ast.CallExpr:
				prog.scanCallFacts(node, ff, m, viaGo, allowed, set)
			case *ast.SendStmt:
				if !viaGo && !allowed(m.Pos(), "blocking") {
					set(factMayBlock, m.Pos(), "channel send")
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !viaGo && !allowed(m.Pos(), "blocking") {
					set(factMayBlock, m.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				if !viaGo && !selectHasDefault(m) && !allowed(m.Pos(), "blocking") {
					set(factMayBlock, m.Pos(), "blocking select")
				}
			}
			if !viaGo {
				prog.scanAllocFacts(node, ff, m, allowed, set)
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	return ff
}

// scanCallFacts records facts arising directly from one call expression:
// wall-clock reads, global rand, known-blocking stdlib/store calls, and
// direct lock acquisitions.
func (prog *Program) scanCallFacts(node *FuncNode, ff *funcFacts, call *ast.CallExpr,
	viaGo bool, allowed func(token.Pos, string) bool, set func(factKind, token.Pos, string)) {

	pkg := node.Pkg
	fn := calleeFuncInfo(pkg.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
		if !allowed(call.Pos(), "wallclock") {
			set(factWallclock, call.Pos(), "time."+fn.Name())
		}
	case (path == "math/rand" || path == "math/rand/v2") &&
		fn.Signature().Recv() == nil && globalRandFns[fn.Name()]:
		if !allowed(call.Pos(), "rand") {
			set(factRand, call.Pos(), "rand."+fn.Name())
		}
	}
	if !viaGo {
		if name, ok := blockingCallInfo(pkg.TypesInfo, call); ok && !allowed(call.Pos(), "blocking") {
			set(factMayBlock, call.Pos(), name)
		}
		if class, ok := prog.lockClassOfCall(pkg, call, "Lock", "RLock"); ok {
			if _, dup := ff.locks[class]; !dup {
				ff.locks[class] = witness{Pos: call.Pos(), Desc: class + ".Lock"}
			}
		}
	}
}

// lockClassOfCall resolves a sync.(RW)Mutex method call to its lock class:
// "pkg.Type.field" for a mutex field, "pkg.var" for a package-level mutex,
// or "pkg.func.var" for a local. The class names the mutex *variable*, so
// every acquisition of the same mutex maps to the same partial-order node.
func (prog *Program) lockClassOfCall(pkg *Package, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	match := false
	for _, name := range names {
		if fn.Name() == name {
			match = true
		}
	}
	if !match {
		return "", false
	}
	return lockClassOfExpr(pkg, sel.X)
}

// lockClassOfExpr names the mutex denoted by e.
func lockClassOfExpr(pkg *Package, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// recv.mu (possibly through more selectors): class is the owning
		// named type plus the field chain.
		if obj, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok && obj.IsField() {
			if owner := fieldOwner(pkg, x); owner != "" {
				return owner + "." + x.Sel.Name, true
			}
			return pkgName(obj.Pkg()) + ".?." + x.Sel.Name, true
		}
		if obj, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			// pkg-qualified package-level var: other.mu
			return pkgName(obj.Pkg()) + "." + obj.Name(), true
		}
	case *ast.Ident:
		obj, ok := pkg.TypesInfo.Uses[x].(*types.Var)
		if !ok {
			return "", false
		}
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return pkgName(obj.Pkg()) + "." + obj.Name(), true
		}
		// Function-local mutex: class it by identifier name; local locks
		// cannot deadlock across functions but still order against fields
		// acquired while held.
		return pkgName(pkg.Types) + ".local." + obj.Name(), true
	}
	return "", false
}

// fieldOwner names the struct type owning the selected field, e.g.
// "service.Manager" for g.mu where g is a *Manager.
func fieldOwner(pkg *Package, sel *ast.SelectorExpr) string {
	t := pkg.TypesInfo.Types[sel.X].Type
	if t == nil {
		return ""
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return pkgName(n.Obj().Pkg()) + "." + n.Obj().Name()
	}
	return ""
}

func pkgName(p *types.Package) string {
	if p == nil {
		return "?"
	}
	return p.Name()
}

// calleeFuncInfo is calleeFunc without a Pass: resolves a call's callee to
// a *types.Func when it is a direct function or method reference.
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// blockingCallInfo is blockingCall without a Pass.
func blockingCallInfo(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "sync" && fn.Name() == "Wait":
		return "sync." + recvTypeName(fn) + ".Wait", true
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "net" || pkg == "net/http":
		return pkg + "." + fn.Name() + " I/O", true
	case strings.HasSuffix(pkg, "internal/store"):
		return "store I/O (" + fn.Name() + ")", true
	}
	return "", false
}

// chain renders the witness chain explaining why fact k holds for fn,
// starting from a call site in the reporting function:
//
//	mem.(*Manager).RestoreRoot → device.Set.LoadSnapshots → time.Now (device/device.go:42)
//
// The final element is the direct source with its position.
func (prog *Program) chain(fn *types.Func, k factKind) string {
	var parts []string
	for hops := 0; fn != nil && hops < 64; hops++ {
		ff := prog.factsOf(fn)
		if ff == nil || !ff.has[k] {
			break
		}
		w := ff.wit[k]
		if w.Callee == nil {
			parts = append(parts, fmt.Sprintf("%s (%s at %s)", shortFuncName(fn), w.Desc, prog.Fset.Position(w.Pos)))
			return strings.Join(parts, " → ")
		}
		parts = append(parts, shortFuncName(fn))
		fn = w.Callee
	}
	return strings.Join(parts, " → ")
}

// lockChain renders the witness chain for acquisition of class by fn.
func (prog *Program) lockChain(fn *types.Func, class string) string {
	var parts []string
	for hops := 0; fn != nil && hops < 64; hops++ {
		ff := prog.factsOf(fn)
		if ff == nil {
			break
		}
		w, ok := ff.locks[class]
		if !ok {
			break
		}
		if w.Callee == nil {
			parts = append(parts, fmt.Sprintf("%s (%s at %s)", shortFuncName(fn), w.Desc, prog.Fset.Position(w.Pos)))
			return strings.Join(parts, " → ")
		}
		parts = append(parts, shortFuncName(fn))
		fn = w.Callee
	}
	return strings.Join(parts, " → ")
}

// shortFuncName renders fn as pkgname.Func or pkgname.(*Type).Method —
// readable in a one-line diagnostic, unlike FullName's full import path.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if n, ok := t.(*types.Named); ok {
			if star != "" {
				return fmt.Sprintf("%s.(*%s).%s", pkgName(fn.Pkg()), n.Obj().Name(), name)
			}
			return fmt.Sprintf("%s.%s.%s", pkgName(fn.Pkg()), n.Obj().Name(), name)
		}
	}
	return pkgName(fn.Pkg()) + "." + name
}
