package analysis

import (
	"go/ast"
	"go/types"
)

// SliceArg flags exported functions that retain caller-owned slice
// arguments past the call.
var SliceArg = &Analyzer{
	Name: "slicearg",
	Doc: `forbid retaining caller-owned slice arguments

A slice parameter belongs to the caller unless the API documents otherwise:
storing it into a struct field, package state, a container, or a channel
keeps a live alias after the call returns, so the caller's next reuse of its
buffer silently corrupts the callee (the retained-trace bug class the
broker's orderImportsInto scratch rework had to dodge by hand in PR 5).
Retention is flagged on exported functions when a slice parameter (or a
re-slice of one) is stored without a copy; append(dst, p...) copies and is
fine. Deliberate ownership transfers carry //nyx:retains on the function.`,
	Run: runSliceArg,
}

func runSliceArg(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			params := sliceParamObjects(pass, fd)
			if len(params) == 0 {
				continue
			}
			checkRetention(pass, fd, params)
		}
	}
	return nil
}

func sliceParamObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				params[obj] = true
			}
		}
	}
	return params
}

func checkRetention(pass *Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures have their own lifetime; out of scope here
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) && i > 0 {
					break
				}
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				} else {
					lhs = n.Lhs[0]
				}
				if !retainingDestination(pass, lhs) {
					continue
				}
				if p := retainedParam(pass, rhs, params); p != nil {
					reportRetention(pass, fd, n, p)
				}
			}
		case *ast.SendStmt:
			if p := retainedParam(pass, n.Value, params); p != nil {
				reportRetention(pass, fd, n, p)
			}
		}
		return true
	})
}

// retainingDestination reports whether storing into lhs outlives the call:
// a struct field, a map/slice element, a dereferenced pointer, or a
// package-level variable. Plain locals do not retain.
func retainingDestination(pass *Pass, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[x]
		return ok && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = pass.TypesInfo.Defs[x]
		}
		return obj != nil && isPackageLevelVar(pass, obj)
	}
	return false
}

// retainedParam reports which slice parameter (if any) the stored value
// aliases: the bare parameter, a re-slice of it, or an append whose base or
// bare element is the parameter. append(dst, p...) copies the elements and
// is not retention.
func retainedParam(pass *Pass, rhs ast.Expr, params map[types.Object]bool) types.Object {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil && params[obj] {
			return obj
		}
	case *ast.SliceExpr:
		return retainedParam(pass, x.X, params)
	case *ast.CallExpr:
		if !isBuiltinAppend(pass, x) || len(x.Args) == 0 {
			return nil
		}
		// append(p, ...) may write through p's backing array and aliases it
		// when capacity allows; append(s, p) retains p as an element.
		if p := retainedParam(pass, x.Args[0], params); p != nil {
			return p
		}
		if x.Ellipsis.IsValid() {
			return nil // append(dst, p...) copies
		}
		for _, arg := range x.Args[1:] {
			if p := retainedParam(pass, arg, params); p != nil {
				return p
			}
		}
	}
	return nil
}

func reportRetention(pass *Pass, fd *ast.FuncDecl, n ast.Node, p types.Object) {
	if pass.Allowed(n, "retains") || pass.Allowed(fd, "retains") {
		return
	}
	pass.Reportf(n.Pos(), "exported %s retains caller-owned slice %q past the call: copy it, or document ownership transfer with //nyx:retains", fd.Name.Name, p.Name())
}
