package analysis

import (
	"go/ast"
	"go/types"
)

// AliasRet flags exported functions that return a slice or map aliasing
// unexported struct or package state without a copy.
var AliasRet = &Analyzer{
	Name: "aliasret",
	Doc: `forbid exported returns that alias internal slice/map state

An exported function returning an internal slice or map hands the caller a
live window into state the package will keep mutating (the DirtyPages bug
class fixed in PR 4: a snapshot's dirty-page list was returned by reference
and changed under the caller's feet). The fix is an explicit copy (append,
slices.Clone, maps.Clone) or a documented //nyx:aliased zero-copy contract.`,
	Run: runAliasRet,
}

func runAliasRet(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObject(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a closure's returns are not the API boundary
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					checkAliasingResult(pass, fd, recv, ret, res)
				}
				return true
			})
		}
	}
	return nil
}

func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// checkAliasingResult flags res when it is a slice/map-typed expression
// reaching internal state: a field chain rooted at the receiver containing
// an unexported field, or an unexported package-level variable.
func checkAliasingResult(pass *Pass, fd *ast.FuncDecl, recv types.Object, ret *ast.ReturnStmt, res ast.Expr) {
	tv, ok := pass.TypesInfo.Types[res]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return
	}

	root, unexportedField := chaseAliasChain(pass, res)
	if root == nil {
		return
	}
	var what string
	switch {
	case recv != nil && root == recv && unexportedField != "":
		what = "unexported field " + unexportedField
	case isPackageLevelVar(pass, root) && !root.Exported():
		what = "package-level state " + root.Name()
	default:
		return
	}
	if pass.Allowed(ret, "aliased") || pass.Allowed(fd, "aliased") {
		return
	}
	pass.Reportf(ret.Pos(), "exported %s returns %s aliasing %s: copy it (append/slices.Clone/maps.Clone) or document with //nyx:aliased", fd.Name.Name, tv.Type.Underlying().String(), what)
}

// chaseAliasChain walks selector/index/slice chains to the base identifier's
// object, recording the first unexported struct field traversed. It returns
// (nil, "") for expressions that allocate (calls, composite literals,
// conversions) and therefore cannot alias pre-existing state.
func chaseAliasChain(pass *Pass, e ast.Expr) (root types.Object, unexportedField string) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x], unexportedField
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if f := sel.Obj(); !f.Exported() && unexportedField == "" {
					unexportedField = f.Name()
				}
				e = x.X
				continue
			}
			// Qualified identifier (pkg.Var).
			return pass.TypesInfo.Uses[x.Sel], unexportedField
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

func isPackageLevelVar(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
