package snappool

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/spec"
)

// testInput builds an input of n single-byte packet ops with the given
// payload seed, so prefixes are content-distinguishable.
func testInput(n int, seed byte) *spec.Input {
	in := spec.NewInput()
	for i := 0; i < n; i++ {
		in.Ops = append(in.Ops, spec.Op{Node: 1, Data: []byte{seed, byte(i)}})
	}
	return in
}

func TestPrefixDigestProperties(t *testing.T) {
	a := testInput(8, 1)
	b := testInput(8, 1)
	c := testInput(8, 2)
	if PrefixDigest(a, 4) != PrefixDigest(b, 4) {
		t.Fatal("identical prefixes must digest identically")
	}
	if PrefixDigest(a, 4) == PrefixDigest(a, 5) {
		t.Fatal("different prefix lengths must digest differently")
	}
	if PrefixDigest(a, 4) == PrefixDigest(c, 4) {
		t.Fatal("different payloads must digest differently")
	}
	// Entries sharing a prefix but diverging later share prefix digests.
	d := testInput(8, 1)
	d.Ops[6].Data = []byte{0xFF}
	if PrefixDigest(a, 5) != PrefixDigest(d, 5) {
		t.Fatal("inputs diverging after the prefix must share the prefix digest")
	}
	// Field-boundary safety: args vs data must not collide.
	e1 := spec.NewInput(spec.Op{Node: 1, Args: []uint16{3}})
	e2 := spec.NewInput(spec.Op{Node: 1, Data: []byte{3, 0}})
	if PrefixDigest(e1, 1) == PrefixDigest(e2, 1) {
		t.Fatal("args and data must hash distinguishably")
	}
}

func TestResolveHitMissAndLongestPrefix(t *testing.T) {
	p := New(0)
	in := testInput(10, 1)
	d4 := PrefixDigest(in, 4)
	d7 := PrefixDigest(in, 7)
	p.Insert(d4, p.AllocSlot(), 4, 4096, 10*time.Millisecond)
	p.Insert(d7, p.AllocSlot(), 7, 4096, 20*time.Millisecond)

	if hit, _, _ := p.Resolve(in, 4); hit == nil || hit.Ops != 4 {
		t.Fatalf("expected hit at ops=4, got %+v", hit)
	}
	// Miss at 5: the longest strict prefix is the ops=4 snapshot.
	if hit, longest, _ := p.Resolve(in, 5); hit != nil || longest == nil || longest.Ops != 4 {
		t.Fatalf("Resolve(5): hit=%+v longest=%+v, want miss with ops=4 parent", hit, longest)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses: got %d/%d want 1/1", st.Hits, st.Misses)
	}

	// The longest strict prefix below a marker at 9 is ops=7.
	if _, longest, _ := p.Resolve(in, 9); longest == nil || longest.Ops != 7 {
		t.Fatalf("Resolve(9): longest=%+v, want ops=7", longest)
	}
	// A diverging input only matches the prefix it shares.
	div := testInput(10, 1)
	div.Ops[5].Data = []byte{0xEE}
	if _, longest, _ := p.Resolve(div, 9); longest == nil || longest.Ops != 4 {
		t.Fatalf("Resolve(diverging): longest=%+v, want ops=4", longest)
	}
}

func TestBudgetEviction(t *testing.T) {
	p := New(3 * 4096)
	in := testInput(10, 1)
	var evicted []*Entry
	for k := 1; k <= 5; k++ {
		kept, ev := p.Insert(PrefixDigest(in, k), p.AllocSlot(), k, 4096, time.Duration(k)*time.Millisecond)
		if !kept {
			t.Fatalf("insert %d not kept", k)
		}
		evicted = append(evicted, ev...)
	}
	st := p.Stats()
	if st.Bytes > 3*4096 {
		t.Fatalf("pool bytes %d exceed budget", st.Bytes)
	}
	if st.PeakBytes > 3*4096 {
		t.Fatalf("peak bytes %d exceed budget", st.PeakBytes)
	}
	if st.Evictions != 2 || len(evicted) != 2 {
		t.Fatalf("expected 2 evictions, got %d (%d returned)", st.Evictions, len(evicted))
	}
	if p.Len() != 3 {
		t.Fatalf("pool should hold 3 entries, got %d", p.Len())
	}
}

func TestEvictionPrefersColdCheapEntries(t *testing.T) {
	p := New(3 * 4096)
	in := testInput(10, 1)
	dExp := PrefixDigest(in, 1) // expensive to recreate
	dChp := PrefixDigest(in, 2) // cheap to recreate
	dMid := PrefixDigest(in, 3)
	p.Insert(dExp, p.AllocSlot(), 1, 4096, 100*time.Millisecond)
	p.Insert(dChp, p.AllocSlot(), 2, 4096, time.Millisecond)
	p.Insert(dMid, p.AllocSlot(), 3, 4096, 50*time.Millisecond)
	// All three are equally cold (insertion order only). Inserting a fourth
	// must evict the cheap one from the LRU half, not the expensive one.
	_, ev := p.Insert(PrefixDigest(in, 4), p.AllocSlot(), 4, 4096, 10*time.Millisecond)
	if len(ev) != 1 || ev[0].Digest != dChp {
		t.Fatalf("expected the cheap cold entry evicted, got %+v", ev)
	}
	// Touching the expensive entry keeps it out of the LRU half entirely.
	p.Resolve(in, 1)
	_, ev = p.Insert(PrefixDigest(in, 5), p.AllocSlot(), 5, 4096, 10*time.Millisecond)
	if len(ev) != 1 || ev[0].Digest == dExp {
		t.Fatalf("recently used expensive entry must survive, evicted %+v", ev)
	}
}

func TestUncacheableSnapshot(t *testing.T) {
	p := New(4096)
	in := testInput(4, 1)
	kept, ev := p.Insert(PrefixDigest(in, 2), p.AllocSlot(), 2, 2*4096, time.Millisecond)
	if kept || len(ev) != 0 {
		t.Fatalf("oversized snapshot must not be pooled (kept=%v ev=%d)", kept, len(ev))
	}
	if st := p.Stats(); st.Uncacheable != 1 || st.Bytes != 0 || st.Slots != 0 {
		t.Fatalf("uncacheable accounting wrong: %+v", st)
	}
}

// TestEvictionDeterministic replays a fixed randomized workload twice and
// demands identical eviction sequences — the pool half of the fixed-seed
// determinism contract the campaign layer relies on.
func TestEvictionDeterministic(t *testing.T) {
	run := func() []int {
		p := New(8 * 4096)
		rng := rand.New(rand.NewSource(7))
		in := testInput(64, 9)
		var evictedSlots []int
		for i := 0; i < 200; i++ {
			k := 1 + rng.Intn(63)
			hit, _, d := p.Resolve(in, k)
			if hit != nil {
				continue
			}
			bytes := int64(1+rng.Intn(3)) * 4096
			cost := time.Duration(1+rng.Intn(50)) * time.Millisecond
			kept, ev := p.Insert(d, p.AllocSlot(), k, bytes, cost)
			for _, e := range ev {
				evictedSlots = append(evictedSlots, e.Slot)
			}
			if !kept {
				evictedSlots = append(evictedSlots, -1)
			}
		}
		return evictedSlots
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("workload produced no evictions; test is vacuous")
	}
	if len(a) != len(b) {
		t.Fatalf("eviction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction sequence diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLookupDigestFastPath(t *testing.T) {
	p := New(0)
	in := testInput(10, 1)
	d4 := PrefixDigest(in, 4)
	p.Insert(d4, p.AllocSlot(), 4, 4096, time.Millisecond)

	// A memoized-digest hit counts as a (digest) hit and refreshes LRU.
	e := p.LookupDigest(d4)
	if e == nil || e.Ops != 4 {
		t.Fatalf("LookupDigest hit = %+v, want ops=4", e)
	}
	st := p.Stats()
	if st.Hits != 1 || st.DigestHits != 1 || st.Misses != 0 {
		t.Fatalf("hits/digest/misses = %d/%d/%d, want 1/1/0", st.Hits, st.DigestHits, st.Misses)
	}

	// An absent digest is NOT counted as a miss: the caller falls back to
	// Resolve, which does the counting exactly once.
	if e := p.LookupDigest(PrefixDigest(in, 5)); e != nil {
		t.Fatalf("unexpected entry for uncached digest: %+v", e)
	}
	if st := p.Stats(); st.Misses != 0 {
		t.Fatalf("LookupDigest must not count misses, got %d", st.Misses)
	}

	// Contains peeks without counting anything.
	if !p.Contains(d4) || p.Contains(PrefixDigest(in, 9)) {
		t.Fatal("Contains wrong")
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("Contains must not count hits/misses: %+v", st)
	}
}

// TestScanEarlyExitMatchesFullScan pins the prefix-length index: the scan
// must resolve exactly the same hit/longest/digest as a position-by-position
// scan would, including after evictions retire a prefix length.
func TestScanEarlyExitMatchesFullScan(t *testing.T) {
	p := New(0)
	in := testInput(32, 3)
	for _, k := range []int{3, 9, 17} {
		p.Insert(PrefixDigest(in, k), p.AllocSlot(), k, 4096, time.Millisecond)
	}
	for limit := 0; limit <= 32; limit++ {
		hit, longest, d := p.Resolve(in, limit)
		if d != PrefixDigest(in, limit) {
			t.Fatalf("limit %d: digest mismatch", limit)
		}
		wantHit := limit == 3 || limit == 9 || limit == 17
		if (hit != nil) != wantHit {
			t.Fatalf("limit %d: hit = %v, want %v", limit, hit != nil, wantHit)
		}
		var wantLongest int
		for _, k := range []int{3, 9, 17} {
			if k < limit {
				wantLongest = k
			}
		}
		if hit == nil && ((longest == nil) != (wantLongest == 0) ||
			(longest != nil && longest.Ops != wantLongest)) {
			t.Fatalf("limit %d: longest = %+v, want ops=%d", limit, longest, wantLongest)
		}
	}
	// Retiring the only ops=9 entry must stop the scan from matching there.
	p.remove(p.entries[PrefixDigest(in, 9)])
	if p.prefixLens[9] != 0 {
		t.Fatalf("prefixLens[9] = %d after removal", p.prefixLens[9])
	}
	if _, longest, _ := p.Resolve(in, 12); longest == nil || longest.Ops != 3 {
		t.Fatalf("longest after eviction = %+v, want ops=3", longest)
	}
}

func TestResolveSinglePass(t *testing.T) {
	p := New(0)
	in := testInput(10, 1)
	d4 := PrefixDigest(in, 4)
	p.Insert(d4, p.AllocSlot(), 4, 4096, time.Millisecond)

	// Miss at 7: no hit, strict-prefix parent at 4, digest matches the
	// standalone PrefixDigest.
	hit, longest, digest := p.Resolve(in, 7)
	if hit != nil {
		t.Fatalf("unexpected hit: %+v", hit)
	}
	if longest == nil || longest.Ops != 4 {
		t.Fatalf("longest = %+v, want ops=4", longest)
	}
	if digest != PrefixDigest(in, 7) {
		t.Fatal("Resolve digest differs from PrefixDigest")
	}
	p.Insert(digest, p.AllocSlot(), 7, 4096, time.Millisecond)

	// Hit at 7: no parent reported, hit counted.
	hit, longest, _ = p.Resolve(in, 7)
	if hit == nil || hit.Ops != 7 || longest != nil {
		t.Fatalf("expected pure hit at 7, got hit=%+v longest=%+v", hit, longest)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestProfileStashWarmRoundTrip(t *testing.T) {
	p := New(0)
	d := PrefixDigest(testInput(4, 1), 2)
	if got := p.WarmProfile(d); got != nil {
		t.Fatalf("empty stash should miss, got %v", got)
	}
	p.StashProfile(d, nil) // nil profiles are ignored
	if got := p.WarmProfile(d); got != nil {
		t.Fatalf("nil stash should not be stored, got %v", got)
	}
	p.StashProfile(d, "prof-a")
	if got := p.WarmProfile(d); got != "prof-a" {
		t.Fatalf("warm = %v, want prof-a", got)
	}
	if got := p.WarmProfile(d); got != nil {
		t.Fatal("warming must consume the stash entry")
	}
	// Re-stashing a live digest refreshes the value in place.
	p.StashProfile(d, "prof-b")
	p.StashProfile(d, "prof-c")
	if got := p.WarmProfile(d); got != "prof-c" {
		t.Fatalf("warm = %v, want prof-c", got)
	}
	if st := p.Stats(); st.ProfilesStashed != 3 || st.ProfilesWarmed != 2 {
		t.Fatalf("stashed/warmed = %d/%d, want 3/2", st.ProfilesStashed, st.ProfilesWarmed)
	}
}

func TestProfileStashFIFOBound(t *testing.T) {
	p := New(0)
	mk := func(i int) Digest {
		var d Digest
		d[0], d[1] = byte(i), byte(i>>8)
		return d
	}
	for i := 0; i < maxStashedProfiles+10; i++ {
		p.StashProfile(mk(i), i)
	}
	for i := 0; i < 10; i++ {
		if got := p.WarmProfile(mk(i)); got != nil {
			t.Fatalf("entry %d should have been FIFO-evicted, got %v", i, got)
		}
	}
	if got := p.WarmProfile(mk(10)); got != 10 {
		t.Fatalf("oldest surviving entry = %v, want 10", got)
	}
	if got := p.WarmProfile(mk(maxStashedProfiles + 9)); got != maxStashedProfiles+9 {
		t.Fatal("newest entry must survive the FIFO bound")
	}
}
