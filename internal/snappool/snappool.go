// Package snappool manages a pool of incremental VM snapshots keyed by
// input-prefix digest, under a memory budget.
//
// The paper's snapshot placement policies (§3.4) assume one secondary
// snapshot: every queue-entry switch discards it, so N entries sharing a
// message prefix each re-execute that prefix from the root. The pool keeps
// many prefix snapshots alive instead — the Agamotto insight (many
// checkpoints under a byte budget, evict by usefulness) applied to Nyx-Net's
// slot mechanism (package mem / vm): a slot is keyed by the digest of the
// serialized opcodes before its snapshot marker, so any input sharing that
// prefix — the same queue entry on a later round, or a different entry with
// a common prefix — resumes from it instead of re-executing the prefix.
//
// The pool is pure bookkeeping and policy: it allocates slot ids, answers
// hit/miss/longest-prefix queries, and decides evictions. The caller owns
// the slots themselves (it must drop evicted slot ids on its executor).
// Eviction is LRU x cheapest-to-recreate-first: among the least-recently
// used half of the pool, the snapshot whose prefix costs the least virtual
// time to re-execute goes first — recreating a cold cheap prefix is nearly
// free, while a cold expensive one is exactly what the pool exists to keep.
package snappool

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sort"
	"time"

	"repro/internal/spec"
)

// Entry is one cached prefix snapshot.
type Entry struct {
	// Digest is the content key: PrefixDigest of the serialized opcodes
	// before the snapshot marker.
	Digest string
	// Slot is the VM snapshot slot id holding the state.
	Slot int
	// Ops is the prefix length in opcodes (the snapshot marker position).
	Ops int
	// Bytes is the slot's memory charge against the pool budget.
	Bytes int64
	// PrefixCost is the estimated virtual time to re-execute the prefix
	// from the root snapshot — the recreation cost eviction minimizes
	// keeping.
	PrefixCost time.Duration

	lastUsed uint64 // pool clock at last hit/insert (LRU)
}

// Stats aggregates pool activity for the campaign telemetry.
type Stats struct {
	// Hits counts rounds served by a cached prefix snapshot (no prefix
	// re-execution); Misses counts rounds that had to create one.
	Hits   uint64
	Misses uint64
	// Evictions counts slots dropped to fit the budget; Uncacheable
	// counts created snapshots too large to pool at all (used once).
	Evictions   uint64
	Uncacheable uint64
	// Bytes is the pooled slot memory currently charged against the
	// budget; PeakBytes is its steady-state maximum, sampled after each
	// Insert's evictions settle (the budget is a cache-capacity bound,
	// not an instantaneous one: within an Insert call, and for the one
	// round an Uncacheable slot lives outside the pool, actual memory
	// can exceed it by at most one slot).
	Bytes     int64
	PeakBytes int64
	// Slots is the current number of pooled snapshots.
	Slots int
}

// Pool is a budgeted prefix-digest-keyed snapshot pool. Not safe for
// concurrent use; campaign workers each own one.
type Pool struct {
	budget   int64
	clock    uint64
	nextSlot int
	entries  map[string]*Entry
	order    []*Entry // live entries in insertion order (deterministic scans)
	stats    Stats
}

// New creates a pool with the given byte budget for slot overlay memory.
// budget <= 0 means unlimited.
func New(budget int64) *Pool {
	return &Pool{budget: budget, nextSlot: 1, entries: make(map[string]*Entry)}
}

// Budget returns the configured byte budget (<= 0: unlimited).
func (p *Pool) Budget() int64 { return p.budget }

// Len returns the number of pooled snapshots.
func (p *Pool) Len() int { return len(p.order) }

// Stats returns a copy of the pool statistics.
func (p *Pool) Stats() Stats {
	st := p.stats
	st.Slots = len(p.order)
	return st
}

// AllocSlot returns a fresh slot id for a snapshot about to be created.
// Ids start above mem.LegacySlot so pool slots never collide with the
// single-slot wrapper.
func (p *Pool) AllocSlot() int {
	id := p.nextSlot
	p.nextSlot++
	return id
}

// Touch refreshes e's LRU position without counting a hit (used when a
// snapshot serves as the base of a chained creation).
func (p *Pool) Touch(e *Entry) {
	p.clock++
	e.lastUsed = p.clock
}

// Resolve answers a snapshot round's pool query in one streaming hash
// pass: the pooled snapshot for in's exact prefix ending at ops (a hit,
// counted and LRU-refreshed), or — on a counted miss — the longest pooled
// strict prefix to chain a creation from, plus the exact prefix's digest
// for the subsequent Insert.
func (p *Pool) Resolve(in *spec.Input, ops int) (hit, longest *Entry, digest string) {
	hit, longest, digest = p.scan(in, ops)
	if hit != nil {
		p.stats.Hits++
		p.Touch(hit)
		return hit, nil, digest
	}
	p.stats.Misses++
	return nil, longest, digest
}

// scan hashes in.Ops[:limit] once, resolving the exact-prefix entry, the
// longest strict-prefix entry, and the exact prefix's digest.
func (p *Pool) scan(in *spec.Input, limit int) (exact, longest *Entry, digest string) {
	if limit > len(in.Ops) {
		limit = len(in.Ops)
	}
	h := sha256.New()
	var buf []byte
	for k := 1; k <= limit; k++ {
		buf = hashOp(h, buf, in.Ops[k-1])
		d := hex.EncodeToString(h.Sum(nil))
		if k == limit {
			digest = d
			break
		}
		if e := p.entries[d]; e != nil && e.Ops == k {
			longest = e
		}
	}
	if limit <= 0 {
		digest = hex.EncodeToString(h.Sum(nil))
	}
	return p.entries[digest], longest, digest
}

// Insert pools a freshly created snapshot and evicts until the budget
// holds. The returned evicted entries' slots must be dropped by the caller;
// when kept is false the new snapshot alone exceeds the whole budget — the
// caller may use it for the current round but must drop it afterwards.
func (p *Pool) Insert(digest string, slot, ops int, bytes int64, prefixCost time.Duration) (kept bool, evicted []*Entry) {
	p.clock++
	e := &Entry{Digest: digest, Slot: slot, Ops: ops, Bytes: bytes, PrefixCost: prefixCost, lastUsed: p.clock}
	if p.budget > 0 && bytes > p.budget {
		p.stats.Uncacheable++
		return false, nil
	}
	p.entries[digest] = e
	p.order = append(p.order, e)
	p.stats.Bytes += bytes
	for p.budget > 0 && p.stats.Bytes > p.budget {
		v := p.victim(e)
		if v == nil {
			break
		}
		p.remove(v)
		p.stats.Evictions++
		evicted = append(evicted, v)
	}
	if p.stats.Bytes > p.stats.PeakBytes {
		p.stats.PeakBytes = p.stats.Bytes
	}
	return true, evicted
}

// victim selects the next entry to evict, never the just-inserted exclude:
// among the least-recently-used half of the candidates, the one with the
// smallest recreation cost (ties: least recently used, then lowest slot id
// — fully deterministic for the eviction-replay tests).
func (p *Pool) victim(exclude *Entry) *Entry {
	cands := make([]*Entry, 0, len(p.order))
	for _, e := range p.order {
		if e != exclude {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed < cands[j].lastUsed })
	old := cands[:(len(cands)+1)/2]
	v := old[0]
	for _, e := range old[1:] {
		if e.PrefixCost < v.PrefixCost ||
			(e.PrefixCost == v.PrefixCost && (e.lastUsed < v.lastUsed ||
				(e.lastUsed == v.lastUsed && e.Slot < v.Slot))) {
			v = e
		}
	}
	return v
}

// remove unlinks e from the pool's index and accounting.
func (p *Pool) remove(e *Entry) {
	delete(p.entries, e.Digest)
	for i, o := range p.order {
		if o == e {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.stats.Bytes -= e.Bytes
}

// PrefixDigest returns the content key of in's first ops opcodes: a SHA-256
// over the opcodes' serialized form (spec.AppendOp — the bytecode encoding
// itself, so equal digests mean byte-identical prefixes and therefore
// identical VM states after execution).
func PrefixDigest(in *spec.Input, ops int) string {
	h := sha256.New()
	var buf []byte
	for i := 0; i < ops && i < len(in.Ops); i++ {
		buf = hashOp(h, buf, in.Ops[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashOp feeds one opcode's bytecode encoding into h, reusing buf as
// scratch and returning it for the next call.
func hashOp(h hash.Hash, buf []byte, op spec.Op) []byte {
	buf = spec.AppendOp(buf[:0], op)
	h.Write(buf)
	return buf
}
