// Package snappool manages a pool of incremental VM snapshots keyed by
// input-prefix digest, under a memory budget.
//
// The paper's snapshot placement policies (§3.4) assume one secondary
// snapshot: every queue-entry switch discards it, so N entries sharing a
// message prefix each re-execute that prefix from the root. The pool keeps
// many prefix snapshots alive instead — the Agamotto insight (many
// checkpoints under a byte budget, evict by usefulness) applied to Nyx-Net's
// slot mechanism (package mem / vm): a slot is keyed by the digest of the
// serialized opcodes before its snapshot marker, so any input sharing that
// prefix — the same queue entry on a later round, or a different entry with
// a common prefix — resumes from it instead of re-executing the prefix.
//
// The pool is pure bookkeeping and policy: it allocates slot ids, answers
// hit/miss/longest-prefix queries, and decides evictions. The caller owns
// the slots themselves (it must drop evicted slot ids on its executor).
// Eviction is LRU x cheapest-to-recreate-first: among the least-recently
// used half of the pool, the snapshot whose prefix costs the least virtual
// time to re-execute goes first — recreating a cold cheap prefix is nearly
// free, while a cold expensive one is exactly what the pool exists to keep.
//
// Lookups are engineered for the wall-clock hot path: entries are keyed by
// raw [32]byte digests (no hex strings), callers that memoize an input's
// prefix digest can resolve repeat hits via LookupDigest without hashing a
// single opcode, and the streaming scan only finalizes intermediate hashes
// at positions where a cached prefix of that exact length exists.
package snappool

import (
	"crypto/sha256"
	"hash"
	"sort"
	"time"

	"repro/internal/spec"
)

// Digest is the raw SHA-256 content key of a serialized opcode prefix.
// Using the fixed-size array (rather than a hex string) keeps pool lookups
// allocation-free and map hashing cheap on the per-round hot path.
type Digest [32]byte

// Entry is one cached prefix snapshot.
type Entry struct {
	// Digest is the content key: PrefixDigest of the serialized opcodes
	// before the snapshot marker.
	Digest Digest
	// Slot is the VM snapshot slot id holding the state.
	Slot int
	// Ops is the prefix length in opcodes (the snapshot marker position).
	Ops int
	// Bytes is the slot's memory charge against the pool budget.
	Bytes int64
	// PrefixCost is the estimated virtual time to re-execute the prefix
	// from the root snapshot — the recreation cost eviction minimizes
	// keeping.
	PrefixCost time.Duration

	lastUsed uint64 // pool clock at last hit/insert (LRU)
}

// Stats aggregates pool activity for the campaign telemetry.
type Stats struct {
	// Hits counts rounds served by a cached prefix snapshot (no prefix
	// re-execution); Misses counts rounds that had to create one.
	Hits   uint64
	Misses uint64
	// DigestHits counts the hits resolved through a caller-memoized digest
	// (LookupDigest): rounds that skipped prefix hashing entirely.
	DigestHits uint64
	// Evictions counts slots dropped to fit the budget; Uncacheable
	// counts created snapshots too large to pool at all (used once).
	Evictions   uint64
	Uncacheable uint64
	// Bytes is the pooled slot memory currently charged against the
	// budget; PeakBytes is its steady-state maximum, sampled after each
	// Insert's evictions settle (the budget is a cache-capacity bound,
	// not an instantaneous one: within an Insert call, and for the one
	// round an Uncacheable slot lives outside the pool, actual memory
	// can exceed it by at most one slot).
	Bytes     int64
	PeakBytes int64
	// Slots is the current number of pooled snapshots.
	Slots int
	// LookupWall is accumulated real (wall-clock) time spent in Resolve
	// and LookupDigest, and Lookups the number of such calls — the
	// hotpath ablation's lookup-cost metric. Wall time is telemetry only;
	// nothing deterministic reads it.
	LookupWall time.Duration
	Lookups    uint64
	// ProfilesStashed counts write-set profiles saved from evicted slots;
	// ProfilesWarmed counts recreated slots seeded from a stash (their
	// first restore predicts hot pages instead of starting cold).
	ProfilesStashed uint64
	ProfilesWarmed  uint64
}

// Pool is a budgeted prefix-digest-keyed snapshot pool. Not safe for
// concurrent use; campaign workers each own one.
type Pool struct {
	budget   int64
	clock    uint64
	nextSlot int
	entries  map[Digest]*Entry
	order    []*Entry // live entries in insertion order (deterministic scans)
	// prefixLens counts live entries per prefix length, so the scan only
	// pays a hash finalization at positions where a cached prefix of that
	// exact length could match (and none at all when the limit is shorter
	// than every cached prefix).
	prefixLens map[int]int

	// profiles stashes evicted slots' write-set profiles keyed by prefix
	// digest, so a slot recreated for the same prefix starts with warm
	// hot-page predictions instead of relearning them restore by restore.
	// The values are opaque to the pool (it never inspects them — the
	// executor produces and consumes them); profOrder tracks insertion
	// order for the bounded FIFO eviction.
	profiles  map[Digest]any
	profOrder []Digest

	stats Stats
}

// maxStashedProfiles bounds the profile stash. Profiles are tiny (a map of
// page counters) next to the slots themselves, so the bound is generous;
// the oldest stash goes first when it overflows.
const maxStashedProfiles = 512

// New creates a pool with the given byte budget for slot overlay memory.
// budget <= 0 means unlimited.
func New(budget int64) *Pool {
	return &Pool{
		budget:     budget,
		nextSlot:   1,
		entries:    make(map[Digest]*Entry),
		prefixLens: make(map[int]int),
		profiles:   make(map[Digest]any),
	}
}

// StashProfile saves the write-set profile of a slot being evicted, keyed
// by its prefix digest. A nil profile is ignored; re-stashing a digest
// refreshes the value in place (keeping its eviction position).
func (p *Pool) StashProfile(d Digest, prof any) {
	if prof == nil {
		return
	}
	if _, ok := p.profiles[d]; !ok {
		if len(p.profOrder) >= maxStashedProfiles {
			oldest := p.profOrder[0]
			p.profOrder = p.profOrder[1:]
			delete(p.profiles, oldest)
		}
		p.profOrder = append(p.profOrder, d)
	}
	p.profiles[d] = prof
	p.stats.ProfilesStashed++
}

// WarmProfile returns (and removes) the stashed profile for a prefix
// digest, or nil. The caller seeds it into the freshly created slot.
func (p *Pool) WarmProfile(d Digest) any {
	prof, ok := p.profiles[d]
	if !ok {
		return nil
	}
	delete(p.profiles, d)
	for i, o := range p.profOrder {
		if o == d {
			p.profOrder = append(p.profOrder[:i], p.profOrder[i+1:]...)
			break
		}
	}
	p.stats.ProfilesWarmed++
	return prof
}

// Budget returns the configured byte budget (<= 0: unlimited).
func (p *Pool) Budget() int64 { return p.budget }

// Len returns the number of pooled snapshots.
func (p *Pool) Len() int { return len(p.order) }

// Stats returns a copy of the pool statistics.
func (p *Pool) Stats() Stats {
	st := p.stats
	st.Slots = len(p.order)
	return st
}

// AllocSlot returns a fresh slot id for a snapshot about to be created.
// Ids start above mem.LegacySlot so pool slots never collide with the
// single-slot wrapper.
func (p *Pool) AllocSlot() int {
	id := p.nextSlot
	p.nextSlot++
	return id
}

// Touch refreshes e's LRU position without counting a hit (used when a
// snapshot serves as the base of a chained creation).
func (p *Pool) Touch(e *Entry) {
	p.clock++
	e.lastUsed = p.clock
}

// LookupDigest resolves a caller-memoized exact-prefix digest: on a hit the
// entry is returned, counted and LRU-refreshed without hashing any opcode —
// the repeat-round fast path. A nil return is NOT counted as a miss: the
// caller falls back to Resolve (which needs the streaming scan anyway to
// find the longest chainable prefix), and that call does the counting.
//
//nyx:hotpath
func (p *Pool) LookupDigest(d Digest) *Entry {
	t0 := time.Now() //nyx:wallclock LookupWall telemetry measures real lookup cost, never virtual time
	e := p.entries[d]
	if e != nil {
		p.stats.Hits++
		p.stats.DigestHits++
		p.Touch(e)
	}
	p.stats.Lookups++
	p.stats.LookupWall += time.Since(t0) //nyx:wallclock LookupWall telemetry
	return e
}

// Contains reports whether the exact-prefix digest is pooled, without
// counting a hit or refreshing LRU state — the placement peek policies use
// to prefer snapshot positions whose prefix is already cached.
func (p *Pool) Contains(d Digest) bool {
	_, ok := p.entries[d]
	return ok
}

// Resolve answers a snapshot round's pool query in one streaming hash
// pass: the pooled snapshot for in's exact prefix ending at ops (a hit,
// counted and LRU-refreshed), or — on a counted miss — the longest pooled
// strict prefix to chain a creation from, plus the exact prefix's digest
// for the subsequent Insert.
func (p *Pool) Resolve(in *spec.Input, ops int) (hit, longest *Entry, digest Digest) {
	t0 := time.Now() //nyx:wallclock LookupWall telemetry measures real lookup cost, never virtual time
	hit, longest, digest = p.scan(in, ops)
	p.stats.Lookups++
	p.stats.LookupWall += time.Since(t0) //nyx:wallclock LookupWall telemetry
	if hit != nil {
		p.stats.Hits++
		p.Touch(hit)
		return hit, nil, digest
	}
	p.stats.Misses++
	return nil, longest, digest
}

// scan hashes in.Ops[:limit] once, resolving the exact-prefix entry, the
// longest strict-prefix entry, and the exact prefix's digest. Intermediate
// digests are only finalized at positions where prefixLens records a cached
// entry of that exact length, so a scan over a queue deeper than every
// cached prefix pays exactly one finalization (the exact digest).
func (p *Pool) scan(in *spec.Input, limit int) (exact, longest *Entry, digest Digest) {
	if limit > len(in.Ops) {
		limit = len(in.Ops)
	}
	h := sha256.New()
	var buf []byte
	var d Digest
	for k := 1; k <= limit; k++ {
		buf = hashOp(h, buf, in.Ops[k-1])
		if k == limit {
			break
		}
		if p.prefixLens[k] == 0 {
			continue // no cached entry can match at this position
		}
		h.Sum(d[:0])
		if e := p.entries[d]; e != nil && e.Ops == k {
			longest = e
		}
	}
	h.Sum(digest[:0])
	return p.entries[digest], longest, digest
}

// Insert pools a freshly created snapshot and evicts until the budget
// holds. The returned evicted entries' slots must be dropped by the caller;
// when kept is false the new snapshot alone exceeds the whole budget — the
// caller may use it for the current round but must drop it afterwards.
func (p *Pool) Insert(digest Digest, slot, ops int, bytes int64, prefixCost time.Duration) (kept bool, evicted []*Entry) {
	p.clock++
	e := &Entry{Digest: digest, Slot: slot, Ops: ops, Bytes: bytes, PrefixCost: prefixCost, lastUsed: p.clock}
	if p.budget > 0 && bytes > p.budget {
		p.stats.Uncacheable++
		return false, nil
	}
	p.entries[digest] = e
	p.order = append(p.order, e)
	p.prefixLens[ops]++
	p.stats.Bytes += bytes
	for p.budget > 0 && p.stats.Bytes > p.budget {
		v := p.victim(e)
		if v == nil {
			break
		}
		p.remove(v)
		p.stats.Evictions++
		evicted = append(evicted, v)
	}
	if p.stats.Bytes > p.stats.PeakBytes {
		p.stats.PeakBytes = p.stats.Bytes
	}
	return true, evicted
}

// victim selects the next entry to evict, never the just-inserted exclude:
// among the least-recently-used half of the candidates, the one with the
// smallest recreation cost (ties: least recently used, then lowest slot id
// — fully deterministic for the eviction-replay tests).
func (p *Pool) victim(exclude *Entry) *Entry {
	cands := make([]*Entry, 0, len(p.order))
	for _, e := range p.order {
		if e != exclude {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed < cands[j].lastUsed })
	old := cands[:(len(cands)+1)/2]
	v := old[0]
	for _, e := range old[1:] {
		if e.PrefixCost < v.PrefixCost ||
			(e.PrefixCost == v.PrefixCost && (e.lastUsed < v.lastUsed ||
				(e.lastUsed == v.lastUsed && e.Slot < v.Slot))) {
			v = e
		}
	}
	return v
}

// remove unlinks e from the pool's index and accounting.
func (p *Pool) remove(e *Entry) {
	delete(p.entries, e.Digest)
	for i, o := range p.order {
		if o == e {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	if p.prefixLens[e.Ops]--; p.prefixLens[e.Ops] <= 0 {
		delete(p.prefixLens, e.Ops)
	}
	p.stats.Bytes -= e.Bytes
}

// PrefixDigest returns the content key of in's first ops opcodes: a SHA-256
// over the opcodes' serialized form (spec.AppendOp — the bytecode encoding
// itself, so equal digests mean byte-identical prefixes and therefore
// identical VM states after execution).
func PrefixDigest(in *spec.Input, ops int) Digest {
	h := sha256.New()
	var buf []byte
	for i := 0; i < ops && i < len(in.Ops); i++ {
		buf = hashOp(h, buf, in.Ops[i])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// hashOp feeds one opcode's bytecode encoding into h, reusing buf as
// scratch and returning it for the next call.
func hashOp(h hash.Hash, buf []byte, op spec.Op) []byte {
	buf = spec.AppendOp(buf[:0], op)
	h.Write(buf)
	return buf
}
