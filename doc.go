// Package repro is a from-scratch Go reproduction of "Nyx-Net: Network
// Fuzzing with Incremental Snapshots" (Schumilo et al., EuroSys 2022).
//
// The library lives under internal/: a simulated whole-system VM substrate
// (mem, device, vm), an in-guest POSIX-ish kernel and network emulation
// layer (guest, netemu), Nyx's affine-typed bytecode input model (spec,
// builder, pcap), the snapshot-placement fuzzer itself (core), the
// parallel campaign orchestrator with corpus sync and checkpoint/resume
// (campaign), the pluggable checkpoint/corpus storage layer behind it
// (store: dir:// local directories and mem:// in-process object buckets,
// both with atomic whole-tree replacement), the multi-campaign HTTP
// service (service), the paper's comparison fuzzers (baseline), the
// evaluation workloads (targets, mario) and the experiment harness
// regenerating every table and figure (experiments). See README.md for a
// tour and DESIGN.md for the paper-to-module map.
//
// The repository's determinism, aliasing, locking, and hot-path allocation
// invariants are machine-checked by a repo-specific analyzer suite
// (analysis, driven by cmd/nyx-vet, gating CI). The suite is
// interprocedural — a whole-program call graph with class-hierarchy
// interface resolution carries fixed-point per-function facts, and
// diagnostics report the full call chain to the offending line: virtual-
// time packages must not reach wall clocks or the global rand generator
// through any callee, nor leak map iteration order into output; exported
// APIs must not return or retain aliased slices (the PR-4 DirtyPages bug
// class); nothing may block while a broker/service/pool mutex is held;
// mutex acquisition order must be cycle-free (lockorder); and functions on
// the //nyx:hotpath-marked restore/lookup paths must not heap-allocate
// (hotalloc). Deliberate exceptions are annotated in source with reasoned
// //nyx: directives, which suppress the fact at its source and thereby
// untaint every caller; see the "Static analysis" section of README.md.
package repro
