// Package repro is a from-scratch Go reproduction of "Nyx-Net: Network
// Fuzzing with Incremental Snapshots" (Schumilo et al., EuroSys 2022).
//
// The library lives under internal/: a simulated whole-system VM substrate
// (mem, device, vm), an in-guest POSIX-ish kernel and network emulation
// layer (guest, netemu), Nyx's affine-typed bytecode input model (spec,
// builder, pcap), the snapshot-placement fuzzer itself (core), the
// parallel campaign orchestrator with corpus sync and checkpoint/resume
// (campaign), the pluggable checkpoint/corpus storage layer behind it
// (store: dir:// local directories and mem:// in-process object buckets,
// both with atomic whole-tree replacement), the multi-campaign HTTP
// service (service), the paper's comparison fuzzers (baseline), the
// evaluation workloads (targets, mario) and the experiment harness
// regenerating every table and figure (experiments). See README.md for a
// tour and DESIGN.md for the paper-to-module map.
package repro
