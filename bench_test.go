// Benchmarks regenerating the paper's tables and figures. Each benchmark
// runs a reduced-scale version of the corresponding experiment (full scale:
// cmd/nyx-bench). Throughput-style results are reported via custom metrics
// so `go test -bench` output doubles as a summary of the reproduction.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
)

// benchCfg is the reduced experiment scale used by benchmarks.
func benchCfg(targets ...string) experiments.Config {
	return experiments.Config{
		CampaignTime: 6 * time.Second,
		Reps:         1,
		Seed:         1,
		Targets:      targets,
	}
}

// benchTargets is a representative subset (small, medium, large, UDP).
var benchTargets = []string{"lightftp", "dnsmasq", "proftpd"}

// BenchmarkTable1Crashes reproduces the crash-discovery comparison on
// targets with shallow bugs.
func BenchmarkTable1Crashes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg("dnsmasq", "tinydtls", "proftpd"))
		if err != nil {
			b.Fatal(err)
		}
		crashes := 0
		for _, row := range rows {
			for _, mark := range row.Found {
				if mark != "-" && mark != "n/a" {
					crashes++
				}
			}
		}
		b.ReportMetric(float64(crashes), "crash-cells")
	}
}

// BenchmarkTable2Coverage reproduces the median-coverage comparison and
// reports Nyx-Net's average gain over AFLnet.
func BenchmarkTable2Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchCfg(benchTargets...))
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for _, row := range rows {
			gain += row.Delta[experiments.FNyxAggressive]
		}
		b.ReportMetric(gain/float64(len(rows)), "avg-nyx-gain-%")
	}
}

// BenchmarkTable3Throughput reproduces the execs/sec comparison and reports
// the Nyx-aggressive : AFLnet throughput ratio.
func BenchmarkTable3Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchCfg(benchTargets...))
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, row := range rows {
			if afl := row.Mean[experiments.FAFLnet]; afl > 0 {
				ratio += row.Mean[experiments.FNyxAggressive] / afl
			}
		}
		b.ReportMetric(ratio/float64(len(rows)), "nyx/aflnet-speedup")
	}
}

// BenchmarkTable4Mario reproduces the Mario time-to-solve experiment on an
// easy level and reports the aggressive policy's solve time.
func BenchmarkTable4Mario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{CampaignTime: 30 * time.Minute, Reps: 1, Seed: 11}
		rows, err := experiments.Table4(cfg, []string{"1-4"})
		if err != nil {
			b.Fatal(err)
		}
		t := rows[0].Times[experiments.FNyxAggressive]
		if t > 0 {
			b.ReportMetric(t.Seconds(), "virt-s-to-solve")
		}
	}
}

// BenchmarkTable5TimeToCoverage reproduces the time-to-equal-coverage
// speedup factors.
func BenchmarkTable5TimeToCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(benchCfg("lightftp"))
		if err != nil {
			b.Fatal(err)
		}
		if s := rows[0].Speedup[experiments.FNyxAggressive]; s > 0 {
			b.ReportMetric(s, "speedup-x")
		}
	}
}

// BenchmarkFigure5CoverageOverTime regenerates the coverage-over-time
// series.
func BenchmarkFigure5CoverageOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(benchCfg("lightftp"),
			[]experiments.FuzzerID{experiments.FAFLnet, experiments.FNyxAggressive})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(series)), "series")
	}
}

// BenchmarkFigure6SnapshotCreate measures incremental snapshot creation in
// wall time at a typical dirty-set size (the paper's Figure 6, create).
func BenchmarkFigure6SnapshotCreate(b *testing.B) {
	m := mem.New(1 << 16)
	m.TakeRoot()
	buf := make([]byte, mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for p := 0; p < 512; p++ {
			copy(m.TouchPage(uint32(p)), buf)
		}
		b.StartTimer()
		if err := m.TakeIncremental(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6SnapshotLoad measures incremental snapshot restore in
// wall time (the paper's Figure 6, load).
func BenchmarkFigure6SnapshotLoad(b *testing.B) {
	m := mem.New(1 << 16)
	m.TakeRoot()
	buf := make([]byte, mem.PageSize)
	for p := 0; p < 512; p++ {
		copy(m.TouchPage(uint32(p)), buf)
	}
	if err := m.TakeIncremental(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for p := 0; p < 512; p++ {
			copy(m.TouchPage(uint32(p)), buf)
		}
		b.StartTimer()
		if err := m.RestoreIncremental(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6AgamottoComparison runs the full Figure 6 sweep (both
// systems, both VM sizes) at reduced point count.
func BenchmarkFigure6AgamottoComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Figure6([]int{4096, 16384}, []int{16, 256}, 2)
		b.ReportMetric(float64(len(points)), "points")
	}
}

// BenchmarkCampaignScaling measures the parallel campaign orchestrator the
// way §5.3 deploys it: N cores fuzzing for the same duration as one. The
// 4-worker aggregated campaign must reach at least the coverage of a single
// worker given the same per-worker execution budget (4 x T vs 1 x T), and
// the aggregate must dominate every one of its own workers. The
// equal-total-budget comparison (4 x T/4 vs 1 x T) is reported as the
// cov-equal-budget metric: parallel fuzzing trades early queue depth for
// breadth, so this ratio climbs towards 1.0 as campaigns lengthen.
func BenchmarkCampaignScaling(b *testing.B) {
	const dur = 8 * time.Second
	const workers = 4
	runCampaign := func(n int, d time.Duration) *campaign.Campaign {
		c, err := campaign.New(campaign.Config{
			Target: "lightftp", Workers: n, Policy: core.PolicyAggressive, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.RunFor(d); err != nil {
			b.Fatal(err)
		}
		return c
	}
	for i := 0; i < b.N; i++ {
		solo := runCampaign(1, dur)
		multi := runCampaign(workers, dur)
		if multi.Coverage() < solo.Coverage() {
			b.Fatalf("4 workers x %v found %d edges < single worker's %d", dur, multi.Coverage(), solo.Coverage())
		}
		for _, st := range multi.PerWorker() {
			if st.Coverage > multi.Coverage() {
				b.Fatalf("worker %d coverage %d exceeds the aggregate %d", st.ID, st.Coverage, multi.Coverage())
			}
		}
		budget := runCampaign(workers, dur/workers)
		b.ReportMetric(float64(multi.Coverage())/float64(solo.Coverage()), "cov-4wxT/1wxT")
		b.ReportMetric(multi.ExecsPerSecond()/solo.ExecsPerSecond(), "eps-4w/1w")
		b.ReportMetric(float64(budget.Coverage())/float64(solo.Coverage()), "cov-equal-budget")
		b.ReportMetric(float64(multi.Coverage()), "edges-4w")
	}
}

// BenchmarkScalabilitySharedRoot measures the §5.3 fleet-memory ratio.
func BenchmarkScalabilitySharedRoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scalability(80, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "fleet/single-mem-ratio")
	}
}

// BenchmarkAblationDirtyTracking compares stack vs bitmap-walk resets.
func BenchmarkAblationDirtyTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.AblationDirtyTracking()
		b.ReportMetric(rs[1].Value/rs[0].Value, "bitmap/stack-cost-ratio")
	}
}

// BenchmarkAblationSnapshotReuse sweeps the reuse count.
func BenchmarkAblationSnapshotReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationSnapshotReuse([]int{1, 50}, 3*time.Second, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[1].Value/rs[0].Value, "reuse50/reuse1-throughput")
	}
}

// BenchmarkAblationScheduling ablates the corpus scheduler at equal
// virtual time: AFL-style (favored culling, energy, splice, trim) and the
// AFLfast-style power schedules vs the flat round-robin rotation,
// reporting coverage ratios and the virtual time the AFL scheduler needed
// to reach the round-robin run's final coverage (negative means it did
// not get there within the budget).
func BenchmarkAblationScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationScheduling("tinydtls", 10*time.Second, 1)
		if err != nil {
			b.Fatal(err)
		}
		byName := make(map[string]float64, len(rs))
		for _, r := range rs {
			byName[r.Name] = r.Value
		}
		rr := byName["round-robin final coverage"]
		b.ReportMetric(byName["afl-sched final coverage"]/rr, "afl/rr-coverage")
		for _, p := range []string{"fast", "coe", "explore", "lin", "quad"} {
			b.ReportMetric(byName["afl+"+p+" final coverage"]/rr, "afl+"+p+"/rr-coverage")
		}
		b.ReportMetric(byName["afl-sched time to round-robin coverage"], "afl-virt-s-to-rr-cov")
	}
}
